//! Seeded random DFG generation for fuzzing, stress tests and property
//! tests.

use crate::Dfg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rewire_arch::OpKind;

/// Parameters for [`random_dfg`].
///
/// Defaults produce kernels in the paper's size band (26–51 nodes) with a
/// realistic mix of memory ops, fan-out and one loop-carried recurrence.
/// The fuzz harness (`rewire-fuzz`) varies every knob to reach the corners
/// the curated suite never visits: deep recurrences, skewed fan-out hubs,
/// memory-saturated graphs and multi-iteration carry distances.
#[derive(Clone, Debug)]
pub struct RandomDfgParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Probability that a node receives a second operand edge.
    pub second_operand_prob: f64,
    /// Fraction of nodes that are memory operations (loads/stores).
    pub memory_fraction: f64,
    /// Number of loop-carried accumulator recurrences to weave in.
    pub recurrences: usize,
    /// Maximum iteration distance for recurrence back-edges. Distances are
    /// assigned *stratified* across the recurrences (see [`random_dfg`]),
    /// so every value in `1..=max_distance` is exercised once
    /// `recurrences >= max_distance`.
    pub max_distance: u32,
    /// Number of intra-iteration nodes on each recurrence cycle besides
    /// the `Phi` (cycle latency = `recurrence_depth + 1`). Depth 1
    /// reproduces the classic accumulator `phi -> body -> phi`; larger
    /// depths raise RecMII (`ceil((depth + 1) / distance)`) and stress the
    /// router's loop-carried timing paths.
    pub recurrence_depth: usize,
    /// Fan-out skew exponent for predecessor selection. `1.0` picks
    /// parents uniformly (the historical behaviour, bit-identical RNG
    /// stream); values above `1.0` bias edges toward early (low-index)
    /// nodes, producing the hub-dominated graphs that stress placement
    /// around high-fan-out values.
    pub fanout_skew: f64,
}

impl Default for RandomDfgParams {
    fn default() -> Self {
        Self {
            nodes: 38,
            second_operand_prob: 0.6,
            memory_fraction: 0.2,
            recurrences: 1,
            max_distance: 1,
            recurrence_depth: 1,
            fanout_skew: 1.0,
        }
    }
}

/// Generates a random, weakly connected, intra-iteration-acyclic DFG.
///
/// Determinism: the same `params` and `seed` always produce the same graph.
///
/// The construction assigns each node a topological position and only adds
/// forward intra-iteration edges, so the distance-0 subgraph is acyclic by
/// construction; recurrences are added as distance ≥ 1 back-edges through a
/// `Phi` node, the way real loop-carried accumulators lower.
///
/// Recurrence distances are assigned stratified rather than independently:
/// recurrence `r` gets distance `1 + (offset + r) mod max_distance` with a
/// seeded random `offset`. Independent uniform draws under-covered the
/// large distances (a seed with every draw landing on 1 left the
/// distance-`d` RecMII paths of the router untested); stratification
/// guarantees all distances in `1..=max_distance` appear whenever
/// `recurrences >= max_distance`, while staying deterministic per seed.
///
/// # Examples
///
/// ```
/// use rewire_dfg::generate::{random_dfg, RandomDfgParams};
/// let g = random_dfg(&RandomDfgParams::default(), 42);
/// assert!(g.validate().is_ok());
/// assert!(g.is_connected());
/// let same = random_dfg(&RandomDfgParams::default(), 42);
/// assert_eq!(g.to_text(), same.to_text());
/// ```
///
/// # Panics
///
/// Panics if `params.nodes == 0`.
pub fn random_dfg(params: &RandomDfgParams, seed: u64) -> Dfg {
    assert!(params.nodes > 0, "a DFG needs at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Dfg::new(format!("random-{seed}"));

    let compute_ops = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Shl,
        OpKind::And,
        OpKind::Xor,
        OpKind::Cmp,
        OpKind::Select,
    ];

    let n_mem = ((params.nodes as f64 * params.memory_fraction).round() as usize).min(params.nodes);

    let mut ids = Vec::with_capacity(params.nodes);
    for i in 0..params.nodes {
        let op = if i < n_mem {
            // Loads early in topological order, stores late.
            if i < n_mem.div_ceil(2) {
                OpKind::Load
            } else {
                OpKind::Store
            }
        } else {
            compute_ops[rng.random_range(0..compute_ops.len())]
        };
        ids.push(g.add_node(format!("v{i}"), op));
    }
    // Shuffle the memory nodes into plausible positions: keep loads at the
    // front third, stores at the back third by sorting positions. We achieve
    // this by the index-based op assignment above plus the forward-edge rule
    // below (stores end up as sinks of whatever feeds them).

    // Picks an earlier node as a predecessor. Skew 1.0 keeps the uniform
    // draw (and the exact historical RNG stream); skew > 1.0 maps a
    // uniform sample through x^skew, concentrating mass on low indices so
    // early nodes become high-fan-out hubs.
    let pick_parent = |rng: &mut StdRng, i: usize| -> usize {
        if params.fanout_skew == 1.0 {
            rng.random_range(0..i)
        } else {
            let u = rng.random_range(0.0..1.0f64);
            ((u.powf(params.fanout_skew) * i as f64) as usize).min(i - 1)
        }
    };

    // Connect every node (except the first) to at least one earlier node so
    // the graph is weakly connected and intra-acyclic.
    for i in 1..params.nodes {
        let p = pick_parent(&mut rng, i);
        g.add_edge(ids[p], ids[i], 0).expect("forward edge");
        if rng.random_bool(params.second_operand_prob) && i > 1 {
            let q = pick_parent(&mut rng, i);
            if q != p {
                g.add_edge(ids[q], ids[i], 0).expect("forward edge");
            }
        }
    }

    // Weave in accumulator recurrences: phi -> (depth-long body chain) with
    // a back edge whose distance is stratified over 1..=max_distance.
    let max_distance = params.max_distance.max(1);
    let depth = params.recurrence_depth.max(1);
    let distance_offset = rng.random_range(0..max_distance);
    for r in 0..params.recurrences {
        let phi = g.add_node(format!("phi{r}"), OpKind::Phi);
        let mut tail = ids[rng.random_range(0..ids.len())];
        g.add_edge(phi, tail, 0).expect("phi feed");
        for d in 1..depth {
            let body = g.add_node(format!("rec{r}_{d}"), OpKind::Add);
            g.add_edge(tail, body, 0).expect("cycle body edge");
            tail = body;
        }
        let distance = 1 + (distance_offset + r as u32) % max_distance;
        g.add_edge(tail, phi, distance).expect("back edge");
    }

    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = RandomDfgParams::default();
        let a = random_dfg(&p, 7);
        let b = random_dfg(&p, 7);
        assert_eq!(a.to_text(), b.to_text());
    }

    #[test]
    fn different_seeds_differ() {
        let p = RandomDfgParams::default();
        let a = random_dfg(&p, 1);
        let b = random_dfg(&p, 2);
        assert_ne!(a.to_text(), b.to_text());
    }

    #[test]
    fn always_valid_and_connected() {
        for seed in 0..20 {
            let g = random_dfg(&RandomDfgParams::default(), seed);
            assert!(g.validate().is_ok(), "seed {seed}");
            assert!(g.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn memory_fraction_respected() {
        let p = RandomDfgParams {
            nodes: 40,
            memory_fraction: 0.25,
            ..Default::default()
        };
        let g = random_dfg(&p, 3);
        assert_eq!(g.num_memory_ops(), 10);
    }

    #[test]
    fn recurrences_bump_rec_mii() {
        let p = RandomDfgParams {
            recurrences: 1,
            ..Default::default()
        };
        let g = random_dfg(&p, 5);
        assert!(g.rec_mii() >= 2, "phi/back-edge cycle has latency ≥ 2");
    }

    #[test]
    fn node_count_includes_phis() {
        let p = RandomDfgParams {
            nodes: 30,
            recurrences: 2,
            ..Default::default()
        };
        let g = random_dfg(&p, 11);
        assert_eq!(g.num_nodes(), 32);
    }

    #[test]
    fn recurrence_depth_adds_cycle_nodes_and_raises_rec_mii() {
        let p = RandomDfgParams {
            nodes: 20,
            recurrences: 1,
            recurrence_depth: 4,
            ..Default::default()
        };
        let g = random_dfg(&p, 13);
        // 20 base nodes + phi + 3 extra cycle-body nodes.
        assert_eq!(g.num_nodes(), 24);
        // Cycle latency = depth + 1 = 5 at distance 1.
        assert_eq!(g.rec_mii(), 5);
        assert!(g.validate().is_ok());
        assert!(g.is_connected());
    }

    #[test]
    fn distances_are_stratified_across_recurrences() {
        // With recurrences >= max_distance, every distance in
        // 1..=max_distance must appear — this is the property the old
        // independent-draw generator violated on unlucky seeds.
        for seed in 0..20 {
            let p = RandomDfgParams {
                nodes: 16,
                recurrences: 3,
                max_distance: 3,
                ..Default::default()
            };
            let g = random_dfg(&p, seed);
            let mut seen = [false; 4];
            for e in g.edges() {
                if e.distance() > 0 {
                    assert!(e.distance() <= 3, "seed {seed}: distance within bound");
                    seen[e.distance() as usize] = true;
                }
            }
            assert!(
                seen[1] && seen[2] && seen[3],
                "seed {seed}: all distances 1..=3 exercised, saw {seen:?}"
            );
        }
    }

    #[test]
    fn distance_beyond_one_appears_even_with_one_recurrence() {
        // A single recurrence with max_distance 4 picks a seeded offset;
        // across a small seed set, distances > 1 must show up.
        let p = RandomDfgParams {
            nodes: 12,
            recurrences: 1,
            max_distance: 4,
            ..Default::default()
        };
        let mut saw_deep = false;
        for seed in 0..16 {
            let g = random_dfg(&p, seed);
            if g.edges().any(|e| e.distance() > 1) {
                saw_deep = true;
            }
        }
        assert!(saw_deep, "distance > 1 never generated across 16 seeds");
    }

    #[test]
    fn fanout_skew_creates_hubs() {
        let uniform = RandomDfgParams {
            nodes: 60,
            fanout_skew: 1.0,
            ..Default::default()
        };
        let skewed = RandomDfgParams {
            nodes: 60,
            fanout_skew: 4.0,
            ..Default::default()
        };
        let max_out = |p: &RandomDfgParams| {
            let mut best = 0usize;
            for seed in 0..8 {
                let g = random_dfg(p, seed);
                for v in g.node_ids() {
                    best = best.max(g.out_edges(v).count());
                }
            }
            best
        };
        assert!(
            max_out(&skewed) > max_out(&uniform),
            "skew 4.0 should concentrate fan-out on early nodes"
        );
        // Skewed graphs remain structurally sound.
        let g = random_dfg(&skewed, 3);
        assert!(g.validate().is_ok());
        assert!(g.is_connected());
    }

    #[test]
    fn default_params_reproduce_the_historical_stream() {
        // fanout_skew 1.0 / depth 1 must keep the pre-extension RNG
        // consumption for the forward-edge phase, so existing seeds keep
        // their graphs (corpus artifacts and pinned tests depend on it).
        let g = random_dfg(&RandomDfgParams::default(), 42);
        assert_eq!(g.num_nodes(), 39); // 38 + 1 phi
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        random_dfg(
            &RandomDfgParams {
                nodes: 0,
                ..Default::default()
            },
            0,
        );
    }
}
