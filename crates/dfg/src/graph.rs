//! The DFG container and structural queries.

use crate::{DfgEdge, DfgNode, EdgeId, NodeId};
use rewire_arch::OpKind;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error produced by [`Dfg`] mutation and validation.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint does not exist in the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes currently in the graph.
        len: usize,
    },
    /// A self-loop with distance 0 (a node cannot depend on itself within one
    /// iteration).
    IntraIterationSelfLoop(NodeId),
    /// The intra-iteration (distance-0) subgraph contains a cycle, so no
    /// schedule exists.
    IntraIterationCycle,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(
                    f,
                    "node {node} is out of range for a graph with {len} nodes"
                )
            }
            GraphError::IntraIterationSelfLoop(n) => {
                write!(f, "node {n} has an intra-iteration self-loop")
            }
            GraphError::IntraIterationCycle => {
                f.write_str("intra-iteration dependencies form a cycle")
            }
        }
    }
}

impl Error for GraphError {}

/// A data-flow graph: the loop body a mapper places onto a CGRA.
///
/// Structurally a directed multigraph; the distance-0 subgraph must be
/// acyclic (checked by [`validate`](Dfg::validate) and by every analysis that
/// needs a topological order).
///
/// # Examples
///
/// ```
/// use rewire_arch::OpKind;
/// use rewire_dfg::Dfg;
/// # fn main() -> Result<(), rewire_dfg::GraphError> {
/// let mut dfg = Dfg::new("acc");
/// let phi = dfg.add_node("phi", OpKind::Phi);
/// let ld = dfg.add_node("ld", OpKind::Load);
/// let add = dfg.add_node("add", OpKind::Add);
/// dfg.add_edge(phi, add, 0)?;
/// dfg.add_edge(ld, add, 0)?;
/// dfg.add_edge(add, phi, 1)?; // loop-carried accumulator
/// assert_eq!(dfg.rec_mii(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dfg {
    name: String,
    nodes: Vec<DfgNode>,
    edges: Vec<DfgEdge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl Dfg {
    /// Creates an empty DFG with the given kernel name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }
    }

    /// Kernel name, e.g. `"gesummv"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the kernel (used by transforms, e.g. unrolling appends `(u)`).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, op: OpKind) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(DfgNode::new(id, name, op));
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a dependency edge `src → dst` with the given iteration distance.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is unknown,
    /// or [`GraphError::IntraIterationSelfLoop`] for a distance-0 self-loop.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        distance: u32,
    ) -> Result<EdgeId, GraphError> {
        for n in [src, dst] {
            if n.index() >= self.nodes.len() {
                return Err(GraphError::NodeOutOfRange {
                    node: n,
                    len: self.nodes.len(),
                });
            }
        }
        if src == dst && distance == 0 {
            return Err(GraphError::IntraIterationSelfLoop(src));
        }
        let id = EdgeId::new(self.edges.len() as u32);
        self.edges.push(DfgEdge::new(id, src, dst, distance));
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        Ok(id)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id.index()]
    }

    /// Looks up an edge.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &DfgEdge {
        &self.edges[id.index()]
    }

    /// Finds a node by name (linear scan; names are unique in the bundled
    /// kernels but uniqueness is not enforced).
    pub fn node_by_name(&self, name: &str) -> Option<&DfgNode> {
        self.nodes.iter().find(|n| n.name() == name)
    }

    /// Iterates over all nodes in id order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &DfgNode> + '_ {
        self.nodes.iter()
    }

    /// Iterates over all node ids in id order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + 'static {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates over all edges in id order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = &DfgEdge> + '_ {
        self.edges.iter()
    }

    /// Iterates over the outgoing edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> impl ExactSizeIterator<Item = &DfgEdge> + '_ {
        self.out_edges[node.index()].iter().map(|&e| self.edge(e))
    }

    /// Iterates over the incoming edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> impl ExactSizeIterator<Item = &DfgEdge> + '_ {
        self.in_edges[node.index()].iter().map(|&e| self.edge(e))
    }

    /// Iterates over the distinct parents (producers feeding `node`).
    pub fn parents(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut seen = vec![];
        self.in_edges(node).filter_map(move |e| {
            if seen.contains(&e.src()) {
                None
            } else {
                seen.push(e.src());
                Some(e.src())
            }
        })
    }

    /// Iterates over the distinct children (consumers of `node`).
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut seen = vec![];
        self.out_edges(node).filter_map(move |e| {
            if seen.contains(&e.dst()) {
                None
            } else {
                seen.push(e.dst());
                Some(e.dst())
            }
        })
    }

    /// Distinct undirected neighbours of `node` (parents ∪ children).
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.parents(node).collect();
        for c in self.children(node) {
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Validates structural invariants: the distance-0 subgraph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IntraIterationCycle`] if a distance-0 cycle
    /// exists.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.try_topo_order().map(|_| ())
    }

    /// Topological order of the nodes over intra-iteration (distance-0)
    /// edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IntraIterationCycle`] if no order exists.
    pub fn try_topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            if e.distance() == 0 {
                indegree[e.dst().index()] += 1;
            }
        }
        let mut queue: VecDeque<NodeId> = self
            .node_ids()
            .filter(|v| indegree[v.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for e in self.out_edges(v) {
                if e.distance() == 0 {
                    let d = &mut indegree[e.dst().index()];
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(e.dst());
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::IntraIterationCycle)
        }
    }

    /// Topological order over intra-iteration edges.
    ///
    /// # Panics
    ///
    /// Panics if the intra-iteration subgraph is cyclic; call
    /// [`validate`](Dfg::validate) first for untrusted graphs.
    pub fn topo_order(&self) -> Vec<NodeId> {
        self.try_topo_order()
            .expect("intra-iteration subgraph must be acyclic")
    }

    /// Length (in edges) of the longest intra-iteration path.
    ///
    /// This is the critical-path depth of one loop iteration; Rewire's
    /// propagation-round heuristic uses the longest path *within a cluster*,
    /// for which see [`longest_path_within`](Dfg::longest_path_within).
    pub fn longest_path(&self) -> u32 {
        let order = self.topo_order();
        let mut depth = vec![0u32; self.nodes.len()];
        let mut best = 0;
        for v in order {
            for e in self.out_edges(v) {
                if e.distance() == 0 {
                    let cand = depth[v.index()] + 1;
                    if cand > depth[e.dst().index()] {
                        depth[e.dst().index()] = cand;
                        best = best.max(cand);
                    }
                }
            }
        }
        best
    }

    /// Length of the longest intra-iteration path that stays inside `members`.
    pub fn longest_path_within(&self, members: &[NodeId]) -> u32 {
        let order = self.topo_order();
        let mut depth = vec![0u32; self.nodes.len()];
        let mut best = 0;
        for v in order {
            if !members.contains(&v) {
                continue;
            }
            for e in self.out_edges(v) {
                if e.distance() == 0 && members.contains(&e.dst()) {
                    let cand = depth[v.index()] + 1;
                    if cand > depth[e.dst().index()] {
                        depth[e.dst().index()] = cand;
                        best = best.max(cand);
                    }
                }
            }
        }
        best
    }

    /// Undirected hop distance from `from` to the nearest node in `targets`,
    /// or `None` if unreachable. Used by Rewire's cluster-growth policy
    /// ("append the node with the least DFS distance to the cluster").
    pub fn hop_distance_to_set(&self, from: NodeId, targets: &[NodeId]) -> Option<u32> {
        if targets.contains(&from) {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; self.nodes.len()];
        dist[from.index()] = 0;
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            for u in self.neighbors(v) {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = dist[v.index()] + 1;
                    if targets.contains(&u) {
                        return Some(dist[u.index()]);
                    }
                    queue.push_back(u);
                }
            }
        }
        None
    }

    /// Whether the graph is weakly connected (ignoring edge direction).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = VecDeque::from([NodeId::new(0)]);
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for u in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    queue.push_back(u);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Number of memory-class nodes (loads + stores).
    pub fn num_memory_ops(&self) -> usize {
        self.nodes.iter().filter(|n| n.op().is_memory()).count()
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DFG '{}' ({} nodes, {} edges, {} mem ops)",
            self.name,
            self.num_nodes(),
            self.num_edges(),
            self.num_memory_ops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dfg, [NodeId; 4]) {
        let mut g = Dfg::new("diamond");
        let a = g.add_node("a", OpKind::Load);
        let b = g.add_node("b", OpKind::Add);
        let c = g.add_node("c", OpKind::Mul);
        let d = g.add_node("d", OpKind::Store);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(a, c, 0).unwrap();
        g.add_edge(b, d, 0).unwrap();
        g.add_edge(c, d, 0).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _) = diamond();
        let order = g.topo_order();
        let pos = |v: NodeId| order.iter().position(|&x| x == v).unwrap();
        for e in g.edges() {
            assert!(pos(e.src()) < pos(e.dst()), "{e}");
        }
    }

    #[test]
    fn cycle_detected() {
        let mut g = Dfg::new("cyclic");
        let a = g.add_node("a", OpKind::Add);
        let b = g.add_node("b", OpKind::Add);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        assert_eq!(g.validate().unwrap_err(), GraphError::IntraIterationCycle);
    }

    #[test]
    fn loop_carried_cycle_is_fine() {
        let mut g = Dfg::new("rec");
        let a = g.add_node("a", OpKind::Phi);
        let b = g.add_node("b", OpKind::Add);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 1).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn self_loop_rules() {
        let mut g = Dfg::new("s");
        let a = g.add_node("a", OpKind::Add);
        assert!(matches!(
            g.add_edge(a, a, 0),
            Err(GraphError::IntraIterationSelfLoop(_))
        ));
        assert!(g.add_edge(a, a, 1).is_ok());
    }

    #[test]
    fn bad_endpoint_rejected() {
        let mut g = Dfg::new("s");
        let a = g.add_node("a", OpKind::Add);
        let ghost = NodeId::new(7);
        assert!(matches!(
            g.add_edge(a, ghost, 0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn parents_and_children_dedup() {
        let mut g = Dfg::new("sq");
        let a = g.add_node("a", OpKind::Load);
        let m = g.add_node("m", OpKind::Mul);
        g.add_edge(a, m, 0).unwrap(); // a*a: two operand edges
        g.add_edge(a, m, 0).unwrap();
        assert_eq!(g.parents(m).count(), 1);
        assert_eq!(g.children(a).count(), 1);
        assert_eq!(g.in_edges(m).count(), 2);
    }

    #[test]
    fn longest_path_of_diamond_is_two() {
        let (g, _) = diamond();
        assert_eq!(g.longest_path(), 2);
    }

    #[test]
    fn longest_path_within_subset() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.longest_path_within(&[a, b, d]), 2);
        assert_eq!(g.longest_path_within(&[a, d]), 0); // no direct edge
    }

    #[test]
    fn hop_distance() {
        let (g, [a, _b, _c, d]) = diamond();
        assert_eq!(g.hop_distance_to_set(a, &[d]), Some(2));
        assert_eq!(g.hop_distance_to_set(a, &[a]), Some(0));
    }

    #[test]
    fn hop_distance_unreachable() {
        let mut g = Dfg::new("two-islands");
        let a = g.add_node("a", OpKind::Add);
        let b = g.add_node("b", OpKind::Add);
        assert_eq!(g.hop_distance_to_set(a, &[b]), None);
        assert!(!g.is_connected());
    }

    #[test]
    fn connectivity() {
        let (g, _) = diamond();
        assert!(g.is_connected());
        assert!(Dfg::new("empty").is_connected());
    }

    #[test]
    fn memory_op_count() {
        let (g, _) = diamond();
        assert_eq!(g.num_memory_ops(), 2);
    }

    #[test]
    fn display_summarises() {
        let (g, _) = diamond();
        let s = format!("{g}");
        assert!(s.contains("diamond"));
        assert!(s.contains("4 nodes"));
    }
}
