//! DFG nodes.

use rewire_arch::OpKind;
use std::fmt;

/// Identifier of a node within a [`Dfg`](crate::Dfg).
///
/// Dense indices in `0..dfg.num_nodes()`, assigned in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a `NodeId` from a raw dense index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index, suitable for indexing side tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        Self::new(index)
    }
}

/// A DFG operation node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DfgNode {
    id: NodeId,
    name: String,
    op: OpKind,
}

impl DfgNode {
    pub(crate) fn new(id: NodeId, name: impl Into<String>, op: OpKind) -> Self {
        Self {
            id,
            name: name.into(),
            op,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Human-readable name (unique within a well-formed DFG, e.g. `ld_a3`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operation this node performs.
    pub fn op(&self) -> OpKind {
        self.op
    }
}

impl fmt::Display for DfgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}({})", self.id, self.name, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        let id = NodeId::new(9);
        assert_eq!(id.index(), 9);
        assert_eq!(format!("{id}"), "n9");
    }

    #[test]
    fn node_accessors() {
        let n = DfgNode::new(NodeId::new(0), "ld_a", OpKind::Load);
        assert_eq!(n.name(), "ld_a");
        assert_eq!(n.op(), OpKind::Load);
        assert_eq!(format!("{n}"), "n0:ld_a(ld)");
    }
}
