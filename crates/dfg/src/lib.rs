//! Data-flow graphs (DFGs) for CGRA modulo scheduling.
//!
//! A [`Dfg`] represents the body of a compute-intensive loop kernel: nodes
//! are operations ([`rewire_arch::OpKind`]), edges are data dependencies. An
//! edge carries an iteration *distance*: distance 0 is an intra-iteration
//! dependency, distance `d ≥ 1` is a loop-carried dependency consumed `d`
//! iterations later (the source of recurrence-constrained minimum initiation
//! intervals).
//!
//! The crate provides everything the mappers in this workspace consume:
//!
//! * graph construction and traversal ([`Dfg`], [`NodeId`], [`EdgeId`]),
//! * MII analysis — resource MII and recurrence MII ([`Dfg::res_mii`],
//!   [`Dfg::rec_mii`], [`Dfg::mii`]),
//! * loop transforms ([`Dfg::unroll`]),
//! * a benchmark suite of hand-built loop kernels standing in for the
//!   PolyBench / MachSuite / MiBench kernels of the paper ([`kernels`]),
//! * seeded random DFG generation for fuzzing and property tests
//!   ([`generate`]),
//! * serialisation: DOT export ([`Dfg::to_dot`]) and a plain-text format
//!   ([`Dfg::to_text`], [`Dfg::from_text`]).
//!
//! # Examples
//!
//! ```
//! use rewire_arch::{presets, OpKind};
//! use rewire_dfg::Dfg;
//!
//! let mut dfg = Dfg::new("axpy");
//! let a = dfg.add_node("ld_x", OpKind::Load);
//! let b = dfg.add_node("mul", OpKind::Mul);
//! let c = dfg.add_node("st_y", OpKind::Store);
//! dfg.add_edge(a, b, 0)?;
//! dfg.add_edge(b, c, 0)?;
//!
//! let cgra = presets::paper_4x4_r4();
//! assert_eq!(dfg.mii(&cgra), Some(1));
//! assert_eq!(dfg.topo_order().len(), 3);
//! # Ok::<(), rewire_dfg::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod dot;
mod edge;
pub mod generate;
mod graph;
pub mod kernels;
mod node;
pub mod stats;
mod text;
mod transform;

pub use edge::{DfgEdge, EdgeId};
pub use graph::{Dfg, GraphError};
pub use node::{DfgNode, NodeId};
pub use stats::{suite_stats, DfgStats, SuiteStats};
pub use text::ParseDfgError;
