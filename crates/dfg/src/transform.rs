//! Loop transforms on DFGs.

use crate::{Dfg, NodeId};

impl Dfg {
    /// Unrolls the loop body `factor` times, following the paper's stress
    /// setup ("unrolled versions (unroll factor of 2) ... specially on 8×8
    /// CGRA").
    ///
    /// Nodes are replicated once per unrolled copy. An edge of the original
    /// kernel with iteration distance `d` from copy `c` lands in copy
    /// `(c + d) mod factor` with new distance `(c + d) / factor`; intra
    /// edges stay within their copy.
    ///
    /// The result is named `"<name>(u)"` for factor 2 (the paper's notation)
    /// and `"<name>(u<factor>)"` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rewire_dfg::kernels;
    /// let bicg = kernels::bicg();
    /// let unrolled = bicg.unroll(2);
    /// assert_eq!(unrolled.num_nodes(), 2 * bicg.num_nodes());
    /// assert_eq!(unrolled.name(), "bicg(u)");
    /// ```
    pub fn unroll(&self, factor: u32) -> Dfg {
        assert!(factor > 0, "unroll factor must be positive");
        let suffix = if factor == 2 {
            "(u)".to_string()
        } else {
            format!("(u{factor})")
        };
        let mut out = Dfg::new(format!("{}{suffix}", self.name()));
        // copies[c][i] = id of node i in copy c.
        let mut copies: Vec<Vec<NodeId>> = Vec::with_capacity(factor as usize);
        for c in 0..factor {
            let mut ids = Vec::with_capacity(self.num_nodes());
            for node in self.nodes() {
                let name = if factor == 1 {
                    node.name().to_string()
                } else {
                    format!("{}_u{c}", node.name())
                };
                ids.push(out.add_node(name, node.op()));
            }
            copies.push(ids);
        }
        for e in self.edges() {
            for c in 0..factor {
                let src = copies[c as usize][e.src().index()];
                let target = c + e.distance();
                let dst_copy = (target % factor) as usize;
                let new_distance = target / factor;
                let dst = copies[dst_copy][e.dst().index()];
                out.add_edge(src, dst, new_distance)
                    .expect("replicated endpoints exist");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::OpKind;

    fn acc() -> Dfg {
        let mut g = Dfg::new("acc");
        let phi = g.add_node("phi", OpKind::Phi);
        let ld = g.add_node("ld", OpKind::Load);
        let add = g.add_node("add", OpKind::Add);
        g.add_edge(phi, add, 0).unwrap();
        g.add_edge(ld, add, 0).unwrap();
        g.add_edge(add, phi, 1).unwrap();
        g
    }

    #[test]
    fn unroll_by_one_is_identity_shape() {
        let g = acc();
        let u = g.unroll(1);
        assert_eq!(u.num_nodes(), g.num_nodes());
        assert_eq!(u.num_edges(), g.num_edges());
        assert_eq!(u.name(), "acc(u1)");
    }

    #[test]
    fn unroll_doubles_nodes_and_edges() {
        let g = acc();
        let u = g.unroll(2);
        assert_eq!(u.num_nodes(), 6);
        assert_eq!(u.num_edges(), 6);
        assert!(u.validate().is_ok());
    }

    #[test]
    fn unrolled_recurrence_crosses_copies() {
        let g = acc();
        let u = g.unroll(2);
        // Copy 0's add feeds copy 1's phi intra-iteration; copy 1's add
        // feeds copy 0's phi with distance 1.
        let add0 = u.node_by_name("add_u0").unwrap().id();
        let phi1 = u.node_by_name("phi_u1").unwrap().id();
        assert!(u
            .out_edges(add0)
            .any(|e| e.dst() == phi1 && e.distance() == 0));
        let add1 = u.node_by_name("add_u1").unwrap().id();
        let phi0 = u.node_by_name("phi_u0").unwrap().id();
        assert!(u
            .out_edges(add1)
            .any(|e| e.dst() == phi0 && e.distance() == 1));
    }

    #[test]
    fn unroll_preserves_rec_mii_per_iteration_ratio() {
        // acc: 2-op recurrence, distance 1 => RecMII 2.
        // Unrolled x2: 4-op recurrence, distance 1 => RecMII 4, i.e. the
        // same 2 cycles per original iteration.
        let g = acc();
        assert_eq!(g.rec_mii(), 2);
        assert_eq!(g.unroll(2).rec_mii(), 4);
    }

    #[test]
    fn unroll_keeps_intra_acyclic() {
        let g = acc();
        for f in 1..=4 {
            assert!(g.unroll(f).validate().is_ok(), "factor {f}");
        }
    }

    #[test]
    #[should_panic(expected = "unroll factor must be positive")]
    fn zero_factor_panics() {
        acc().unroll(0);
    }
}
