//! Loop transforms on DFGs.

use crate::{Dfg, EdgeId, NodeId};

impl Dfg {
    /// Unrolls the loop body `factor` times, following the paper's stress
    /// setup ("unrolled versions (unroll factor of 2) ... specially on 8×8
    /// CGRA").
    ///
    /// Nodes are replicated once per unrolled copy. An edge of the original
    /// kernel with iteration distance `d` from copy `c` lands in copy
    /// `(c + d) mod factor` with new distance `(c + d) / factor`; intra
    /// edges stay within their copy.
    ///
    /// The result is named `"<name>(u)"` for factor 2 (the paper's notation)
    /// and `"<name>(u<factor>)"` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rewire_dfg::kernels;
    /// let bicg = kernels::bicg();
    /// let unrolled = bicg.unroll(2);
    /// assert_eq!(unrolled.num_nodes(), 2 * bicg.num_nodes());
    /// assert_eq!(unrolled.name(), "bicg(u)");
    /// ```
    pub fn unroll(&self, factor: u32) -> Dfg {
        assert!(factor > 0, "unroll factor must be positive");
        let suffix = if factor == 2 {
            "(u)".to_string()
        } else {
            format!("(u{factor})")
        };
        let mut out = Dfg::new(format!("{}{suffix}", self.name()));
        // copies[c][i] = id of node i in copy c.
        let mut copies: Vec<Vec<NodeId>> = Vec::with_capacity(factor as usize);
        for c in 0..factor {
            let mut ids = Vec::with_capacity(self.num_nodes());
            for node in self.nodes() {
                let name = if factor == 1 {
                    node.name().to_string()
                } else {
                    format!("{}_u{c}", node.name())
                };
                ids.push(out.add_node(name, node.op()));
            }
            copies.push(ids);
        }
        for e in self.edges() {
            for c in 0..factor {
                let src = copies[c as usize][e.src().index()];
                let target = c + e.distance();
                let dst_copy = (target % factor) as usize;
                let new_distance = target / factor;
                let dst = copies[dst_copy][e.dst().index()];
                out.add_edge(src, dst, new_distance)
                    .expect("replicated endpoints exist");
            }
        }
        out
    }

    /// Returns a copy of the graph without `victim` and without every edge
    /// touching it. Remaining nodes keep their names and relative order
    /// (ids are re-densified).
    ///
    /// `Dfg` has no in-place removal — ids are dense indices into the node
    /// and edge arrays — so reduction passes (most prominently the fuzz
    /// shrinker) rebuild instead. The result may be disconnected; callers
    /// that need connectivity should check [`Dfg::is_connected`].
    pub fn without_node(&self, victim: NodeId) -> Dfg {
        let mut out = Dfg::new(self.name());
        let mut remap = vec![None; self.num_nodes()];
        for node in self.nodes() {
            if node.id() != victim {
                remap[node.id().index()] = Some(out.add_node(node.name(), node.op()));
            }
        }
        for e in self.edges() {
            if let (Some(src), Some(dst)) = (remap[e.src().index()], remap[e.dst().index()]) {
                out.add_edge(src, dst, e.distance())
                    .expect("surviving endpoints are valid");
            }
        }
        out
    }

    /// Returns a copy of the graph without the edge `victim`; nodes are
    /// unchanged. See [`Dfg::without_node`] for why this rebuilds.
    pub fn without_edge(&self, victim: EdgeId) -> Dfg {
        self.rebuild_edges(|id, _, _, d| if id == victim { None } else { Some(d) })
    }

    /// Returns a copy of the graph with edge `victim`'s iteration distance
    /// replaced by `distance`; everything else is unchanged.
    ///
    /// The shrinker uses this to walk a failing back-edge's distance down
    /// toward 1, isolating whether a bug depends on deep loop carries.
    pub fn with_edge_distance(&self, victim: EdgeId, distance: u32) -> Dfg {
        self.rebuild_edges(|id, _, _, d| Some(if id == victim { distance } else { d }))
    }

    fn rebuild_edges(&self, mut f: impl FnMut(EdgeId, NodeId, NodeId, u32) -> Option<u32>) -> Dfg {
        let mut out = Dfg::new(self.name());
        for node in self.nodes() {
            out.add_node(node.name(), node.op());
        }
        for e in self.edges() {
            if let Some(d) = f(e.id(), e.src(), e.dst(), e.distance()) {
                out.add_edge(e.src(), e.dst(), d)
                    .expect("endpoints unchanged");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::OpKind;

    fn acc() -> Dfg {
        let mut g = Dfg::new("acc");
        let phi = g.add_node("phi", OpKind::Phi);
        let ld = g.add_node("ld", OpKind::Load);
        let add = g.add_node("add", OpKind::Add);
        g.add_edge(phi, add, 0).unwrap();
        g.add_edge(ld, add, 0).unwrap();
        g.add_edge(add, phi, 1).unwrap();
        g
    }

    #[test]
    fn unroll_by_one_is_identity_shape() {
        let g = acc();
        let u = g.unroll(1);
        assert_eq!(u.num_nodes(), g.num_nodes());
        assert_eq!(u.num_edges(), g.num_edges());
        assert_eq!(u.name(), "acc(u1)");
    }

    #[test]
    fn unroll_doubles_nodes_and_edges() {
        let g = acc();
        let u = g.unroll(2);
        assert_eq!(u.num_nodes(), 6);
        assert_eq!(u.num_edges(), 6);
        assert!(u.validate().is_ok());
    }

    #[test]
    fn unrolled_recurrence_crosses_copies() {
        let g = acc();
        let u = g.unroll(2);
        // Copy 0's add feeds copy 1's phi intra-iteration; copy 1's add
        // feeds copy 0's phi with distance 1.
        let add0 = u.node_by_name("add_u0").unwrap().id();
        let phi1 = u.node_by_name("phi_u1").unwrap().id();
        assert!(u
            .out_edges(add0)
            .any(|e| e.dst() == phi1 && e.distance() == 0));
        let add1 = u.node_by_name("add_u1").unwrap().id();
        let phi0 = u.node_by_name("phi_u0").unwrap().id();
        assert!(u
            .out_edges(add1)
            .any(|e| e.dst() == phi0 && e.distance() == 1));
    }

    #[test]
    fn unroll_preserves_rec_mii_per_iteration_ratio() {
        // acc: 2-op recurrence, distance 1 => RecMII 2.
        // Unrolled x2: 4-op recurrence, distance 1 => RecMII 4, i.e. the
        // same 2 cycles per original iteration.
        let g = acc();
        assert_eq!(g.rec_mii(), 2);
        assert_eq!(g.unroll(2).rec_mii(), 4);
    }

    #[test]
    fn unroll_keeps_intra_acyclic() {
        let g = acc();
        for f in 1..=4 {
            assert!(g.unroll(f).validate().is_ok(), "factor {f}");
        }
    }

    #[test]
    #[should_panic(expected = "unroll factor must be positive")]
    fn zero_factor_panics() {
        acc().unroll(0);
    }

    #[test]
    fn without_node_drops_node_and_incident_edges() {
        let g = acc();
        let ld = g.node_by_name("ld").unwrap().id();
        let smaller = g.without_node(ld);
        assert_eq!(smaller.num_nodes(), 2);
        assert_eq!(smaller.num_edges(), 2); // phi->add, add->phi survive
        assert!(smaller.node_by_name("ld").is_none());
        assert!(smaller.node_by_name("phi").is_some());
        assert!(smaller.validate().is_ok());
    }

    #[test]
    fn without_node_redensifies_ids() {
        let g = acc();
        let phi = g.node_by_name("phi").unwrap().id();
        let smaller = g.without_node(phi);
        // Remaining ids are dense starting from 0.
        let ids: Vec<_> = smaller.node_ids().map(|v| v.index()).collect();
        assert_eq!(ids, vec![0, 1]);
        // Back-edge died with its endpoint; ld->add survives.
        assert_eq!(smaller.num_edges(), 1);
    }

    #[test]
    fn without_edge_keeps_nodes() {
        let g = acc();
        let back = g.edges().find(|e| e.distance() == 1).unwrap().id();
        let smaller = g.without_edge(back);
        assert_eq!(smaller.num_nodes(), 3);
        assert_eq!(smaller.num_edges(), 2);
        assert!(smaller.edges().all(|e| e.distance() == 0));
    }

    #[test]
    fn with_edge_distance_rewrites_one_edge() {
        let g = acc();
        let back = g.edges().find(|e| e.distance() == 1).unwrap().id();
        let deep = g.with_edge_distance(back, 3);
        assert_eq!(deep.num_edges(), g.num_edges());
        assert_eq!(deep.edge(back).distance(), 3);
        // RecMII drops: 2-op cycle over distance 3 needs ceil(2/3) = 1.
        assert_eq!(deep.rec_mii(), 1);
    }
}
