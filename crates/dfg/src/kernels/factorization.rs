//! PolyBench-style factorization / decomposition kernels.
//!
//! These kernels carry genuine loop-carried memory dependencies (the pivot
//! row/column written in one iteration is consumed in the next), which is
//! what makes them recurrence-bound and hard to map at low II — the paper
//! calls out cholesky/ludcmp as only mappable on the 8×8 fabric.

use super::KernelBuilder;
use crate::Dfg;

/// `lu`: in-place LU factorization elimination step —
/// `A[k][j] /= A[k][k]`, then `A[i][j] -= A[i][k]·A[k][j]`, two column
/// lanes per iteration.
pub fn lu() -> Dfg {
    let mut k = KernelBuilder::new("lu");
    let i = k.induction();
    let j = k.induction();
    let kk = k.induction();

    // Pivot normalisation of row k.
    let pivot_addr = k.address(&[kk, kk]);
    let ld_pivot = k.load(pivot_addr);
    let akj_addr = k.address(&[kk, j]);
    let ld_akj = k.load(akj_addr);
    let norm = k.div(ld_akj, ld_pivot);
    let st_norm = k.store(akj_addr, norm);
    k.loop_dep(st_norm, ld_akj, 1);

    // Elimination lane 1.
    let aik = k.load_at(&[i, kk]);
    let t = k.mul(aik, norm);
    let aij_addr = k.address(&[i, j]);
    let ld_aij = k.load(aij_addr);
    let e1 = k.sub(ld_aij, t);
    let st_aij = k.store(aij_addr, e1);
    k.loop_dep(st_aij, ld_aij, 2);
    k.loop_dep(st_aij, ld_pivot, 2); // next pivot comes from eliminated rows

    // Elimination lane 2 (adjacent column).
    let ld_akj2 = k.load_at(&[kk, j]);
    let norm2 = k.div(ld_akj2, ld_pivot);
    let t2 = k.mul(aik, norm2);
    let ld_aij2 = k.load_at(&[i, j]);
    let e2 = k.sub(ld_aij2, t2);
    let st2 = k.store_at(&[i, j], e2);
    k.loop_dep(st2, ld_akj2, 2);

    let _gj = k.loop_guard(j);
    let _gi = k.loop_guard(i);
    k.build()
}

/// `ludcmp`: LU decomposition fused with the forward-substitution solve
/// `y = L⁻¹·b`.
pub fn ludcmp() -> Dfg {
    let mut k = KernelBuilder::new("ludcmp");
    let i = k.induction();
    let j = k.induction();
    let kk = k.induction();

    // Decomposition step (as in `lu`).
    let pivot_addr = k.address(&[kk, kk]);
    let ld_pivot = k.load(pivot_addr);
    let akj_addr = k.address(&[kk, j]);
    let ld_akj = k.load(akj_addr);
    let norm = k.div(ld_akj, ld_pivot);
    let aik = k.load_at(&[i, kk]);
    let t = k.mul(aik, norm);
    let aij_addr = k.address(&[i, j]);
    let ld_aij = k.load(aij_addr);
    let e = k.sub(ld_aij, t);
    let st_aij = k.store(aij_addr, e);
    k.loop_dep(st_aij, ld_aij, 2);
    k.loop_dep(st_aij, ld_pivot, 2);

    // Forward substitution: y[i] = (b[i] - Σ_j L[i][j]·y[j]) / L[i][i].
    let ld_b = k.load_at(&[i]);
    let ld_l = k.load_at(&[i, j]);
    let ld_y = k.load_at(&[j]);
    let ly = k.mul(ld_l, ld_y);
    let acc = k.accumulate(ly, 1);
    let num = k.sub(ld_b, acc);
    let ld_diag = k.load_at(&[i, i]);
    let y = k.div(num, ld_diag);
    let st_y = k.store_at(&[i], y);
    k.loop_dep(st_y, ld_y, 2); // y[j] produced by earlier rows

    let _gj = k.loop_guard(j);
    let _gi = k.loop_guard(i);
    k.build()
}

/// `cholesky`: `A = L·Lᵀ` factorization step with the diagonal
/// square-root / off-diagonal division split resolved by a predicate.
pub fn cholesky() -> Dfg {
    let mut k = KernelBuilder::new("cholesky");
    let i = k.induction();
    let j = k.induction();
    let kk = k.induction();

    // sum = Σ_k L[i][k]·L[j][k]
    let ld_lik = k.load_at(&[i, kk]);
    let ld_ljk = k.load_at(&[j, kk]);
    let t = k.mul(ld_lik, ld_ljk);
    let acc = k.accumulate(t, 1);

    // Second reduction lane (partial inner unroll).
    let ld_lik2 = k.load_at(&[i, kk]);
    let ld_ljk2 = k.load_at(&[j, kk]);
    let t2 = k.mul(ld_lik2, ld_ljk2);
    let acc2 = k.accumulate(t2, 1);
    let lanes = k.add(acc, acc2);

    let ld_aij = k.load_at(&[i, j]);
    let x = k.sub(ld_aij, lanes);

    // Diagonal: L[j][j] = sqrt(x).
    let root = k.sqrt(x);
    let diag_addr = k.address(&[j, j]);
    let st_diag = k.store(diag_addr, root);

    // Off-diagonal: L[i][j] = x / L[j][j].
    let ld_diag = k.load(diag_addr);
    k.loop_dep(st_diag, ld_diag, 2);
    let val = k.div(x, ld_diag);
    let ondiag = k.binary(rewire_arch::OpKind::Cmp, i, j);
    let sel = k.binary(rewire_arch::OpKind::Select, ondiag, val);
    let st = k.store_at(&[i, j], sel);
    k.loop_dep(st, ld_lik, 2);

    let _gk = k.loop_guard(kk);
    let _gj = k.loop_guard(j);
    k.build()
}

/// `gramschmidt`: modified Gram–Schmidt orthogonalisation — column norm,
/// normalisation, and projection subtraction.
pub fn gramschmidt() -> Dfg {
    let mut k = KernelBuilder::new("gramschmidt");
    let i = k.induction();
    let j = k.induction();
    let kk = k.induction();

    // nrm = sqrt(Σ_i A[i][k]²); R[k][k] = nrm.
    let ld_a = k.load_at(&[i, kk]);
    let sq = k.mul(ld_a, ld_a);
    let acc_nrm = k.accumulate(sq, 1);
    let nrm = k.sqrt(acc_nrm);
    let _st_r = k.store_at(&[kk], nrm);

    // Q[i][k] = A[i][k] / nrm.
    let ld_a2 = k.load_at(&[i, kk]);
    let q = k.div(ld_a2, nrm);
    let st_q = k.store_at(&[i, kk], q);

    // R[k][j] = Σ_i Q[i][k]·A[i][j]; A[i][j] -= Q[i][k]·R[k][j].
    let ld_q = k.load_at(&[i, kk]);
    k.loop_dep(st_q, ld_q, 1);
    let ld_aj = k.load_at(&[i, j]);
    let t = k.mul(ld_q, ld_aj);
    let acc_r = k.accumulate(t, 1);
    let st_rkj = k.store_at(&[kk, j], acc_r);
    let proj = k.mul(ld_q, acc_r);
    let upd = k.sub(ld_aj, proj);
    let st_a = k.store_at(&[i, j], upd);
    k.loop_dep(st_a, ld_aj, 2);
    k.loop_dep(st_rkj, ld_a, 2); // next column's norm sees updated A

    let _gi = k.loop_guard(i);
    let _gj = k.loop_guard(j);
    k.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_are_recurrence_bound() {
        for g in [lu(), ludcmp(), cholesky(), gramschmidt()] {
            assert!(
                g.rec_mii() >= 2,
                "{} should have a real recurrence, got RecMII {}",
                g.name(),
                g.rec_mii()
            );
        }
    }

    #[test]
    fn cholesky_has_sqrt_and_div() {
        use rewire_arch::OpKind;
        let g = cholesky();
        assert!(g.nodes().any(|n| n.op() == OpKind::Sqrt));
        assert!(g.nodes().any(|n| n.op() == OpKind::Div));
    }

    #[test]
    fn ludcmp_is_larger_than_lu() {
        assert!(ludcmp().num_nodes() > lu().num_nodes());
    }
}
