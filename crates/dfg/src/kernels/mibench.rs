//! MiBench-style embedded kernels.

use super::KernelBuilder;
use crate::Dfg;
use rewire_arch::OpKind;

/// `fir`: finite impulse response filter, two taps per iteration plus the
/// delay-line shift.
pub fn fir() -> Dfg {
    let mut k = KernelBuilder::new("fir");
    let n = k.induction();
    let kk = k.induction();

    let c1 = k.load_at(&[kk]);
    let x1 = k.load_at(&[n, kk]);
    let t1 = k.mul(c1, x1);
    let acc1 = k.accumulate(t1, 1);

    let c2 = k.load_at(&[kk]);
    let x2 = k.load_at(&[n, kk]);
    let t2 = k.mul(c2, x2);
    let acc2 = k.accumulate(t2, 1);

    let c3 = k.load_at(&[kk]);
    let x3 = k.load_at(&[n, kk]);
    let t3 = k.mul(c3, x3);
    let acc3 = k.accumulate(t3, 1);

    let sum0 = k.add(acc1, acc2);
    let sum = k.add(sum0, acc3);
    let _st_y = k.store_at(&[n], sum);

    // Delay-line shift: x[k+1] = x[k].
    let ld_d = k.load_at(&[kk]);
    let st_d = k.store_at(&[kk], ld_d);
    k.loop_dep(st_d, x1, 1);

    let _gk = k.loop_guard(kk);
    let _gn = k.loop_guard(n);
    k.build()
}

/// `susan`: SUSAN corner/edge response — absolute brightness differences
/// against the nucleus, thresholded and counted (USAN area).
pub fn susan() -> Dfg {
    let mut k = KernelBuilder::new("susan");
    let x = k.induction();
    let y = k.induction();

    let centre = k.load_at(&[x, y]);
    let n1 = k.load_at(&[x, y]);
    let n2 = k.load_at(&[x, y]);
    let n3 = k.load_at(&[x, y]);
    let n4 = k.load_at(&[x, y]);

    let d1 = k.sub(n1, centre);
    let d2 = k.sub(n2, centre);
    let d3 = k.sub(n3, centre);
    let d4 = k.sub(n4, centre);

    // |d| via sign-mask AND (the integer abs idiom).
    let mask = k.konst();
    let a1 = k.binary(OpKind::And, d1, mask);
    let a2 = k.binary(OpKind::And, d2, mask);
    let a3 = k.binary(OpKind::And, d3, mask);
    let a4 = k.binary(OpKind::And, d4, mask);

    let thresh = k.konst();
    let c1 = k.binary(OpKind::Cmp, a1, thresh);
    let c2 = k.binary(OpKind::Cmp, a2, thresh);
    let c3 = k.binary(OpKind::Cmp, a3, thresh);
    let c4 = k.binary(OpKind::Cmp, a4, thresh);

    let s1 = k.add(c1, c2);
    let s2 = k.add(s1, c3);
    let s3 = k.add(s2, c4);
    let usan = k.accumulate(s3, 1);
    let _st = k.store_at(&[x, y], usan);

    let _gx = k.loop_guard(x);
    let _gy = k.loop_guard(y);
    k.build()
}

/// `sha`: one SHA-1 round — choice function, two rotations and the
/// five-way working-variable shift.
pub fn sha() -> Dfg {
    let mut k = KernelBuilder::new("sha");
    let t = k.induction();

    let a = k.load_at(&[t]);
    let b = k.load_at(&[t]);
    let c = k.load_at(&[t]);
    let d = k.load_at(&[t]);
    let e = k.load_at(&[t]);

    // rotl(a, 5)
    let five = k.konst();
    let lo = k.binary(OpKind::Shl, a, five);
    let twenty7 = k.konst();
    let hi = k.binary(OpKind::Shr, a, twenty7);
    let rot_a = k.binary(OpKind::Or, lo, hi);

    // ch(b, c, d) = (b & c) | (~b & d)
    let bc = k.binary(OpKind::And, b, c);
    let ones = k.konst();
    let nb = k.binary(OpKind::Xor, b, ones);
    let nbd = k.binary(OpKind::And, nb, d);
    let ch = k.binary(OpKind::Or, bc, nbd);

    // temp = rotl(a,5) + ch + e + w[t] + K
    let ld_w = k.load_at(&[t]);
    let kconst = k.konst();
    let s1 = k.add(rot_a, ch);
    let s2 = k.add(s1, e);
    let s3 = k.add(s2, ld_w);
    let temp = k.add(s3, kconst);

    // rotl(b, 30)
    let thirty = k.konst();
    let lo2 = k.binary(OpKind::Shl, b, thirty);
    let two = k.konst();
    let hi2 = k.binary(OpKind::Shr, b, two);
    let rot_b = k.binary(OpKind::Or, lo2, hi2);

    let st_a = k.store_at(&[t], temp);
    let st_c = k.store_at(&[t], rot_b);
    k.loop_dep(st_a, a, 2); // next round's working variables
    k.loop_dep(st_c, c, 2);

    let _g = k.loop_guard(t);
    k.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha_is_bitwise_heavy() {
        let g = sha();
        let bitwise = g
            .nodes()
            .filter(|n| {
                matches!(
                    n.op(),
                    OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Shl | OpKind::Shr
                )
            })
            .count();
        assert!(bitwise >= 9, "got {bitwise}");
    }

    #[test]
    fn susan_counts_four_neighbours() {
        let g = susan();
        let cmps = g.nodes().filter(|n| n.op() == OpKind::Cmp).count();
        // 4 threshold compares + 2 loop guards
        assert_eq!(cmps, 6);
    }

    #[test]
    fn fir_has_three_mac_lanes() {
        let g = fir();
        let muls = g.nodes().filter(|n| n.op() == OpKind::Mul).count();
        assert_eq!(muls, 3);
    }
}
