//! Signal/image-processing kernels (MiBench/MachSuite-adjacent): dense
//! convolution, gradient filters, transforms and clustering inner loops.

use super::KernelBuilder;
use crate::Dfg;
use rewire_arch::OpKind;

/// `conv2d`: 3×3 convolution — nine MACs against a coefficient window.
pub fn conv2d() -> Dfg {
    let mut k = KernelBuilder::new("conv2d");
    let x = k.induction();
    let y = k.induction();

    let mut sum = None;
    for _tap in 0..3 {
        // Three row-lanes of three taps each, summed pairwise: realistic
        // strength reduction of the 9-point window.
        let px_a = k.load_at(&[x, y]);
        let w_a = k.konst();
        let m_a = k.mul(px_a, w_a);
        let px_b = k.load_at(&[x, y]);
        let w_b = k.konst();
        let m_b = k.mul(px_b, w_b);
        let lane = k.add(m_a, m_b);
        sum = Some(match sum {
            None => lane,
            Some(s) => k.add(s, lane),
        });
    }
    let total = sum.expect("three lanes");
    let shift = k.konst();
    let scaled = k.binary(OpKind::Shr, total, shift);
    let _st = k.store_at(&[x, y], scaled);

    let _gx = k.loop_guard(x);
    let _gy = k.loop_guard(y);
    k.build()
}

/// `sobel`: gradient magnitude — horizontal and vertical 3-tap gradients
/// combined with |gx| + |gy|.
pub fn sobel() -> Dfg {
    let mut k = KernelBuilder::new("sobel");
    let x = k.induction();
    let y = k.induction();

    // Horizontal gradient from two boundary columns.
    let l1 = k.load_at(&[x, y]);
    let l2 = k.load_at(&[x, y]);
    let r1 = k.load_at(&[x, y]);
    let r2 = k.load_at(&[x, y]);
    let left = k.add(l1, l2);
    let right = k.add(r1, r2);
    let gx = k.sub(right, left);

    // Vertical gradient from two boundary rows.
    let t1 = k.load_at(&[x, y]);
    let b1 = k.load_at(&[x, y]);
    let gy = k.sub(b1, t1);

    // |gx| + |gy| via sign-mask ANDs.
    let mask = k.konst();
    let ax = k.binary(OpKind::And, gx, mask);
    let ay = k.binary(OpKind::And, gy, mask);
    let mag = k.add(ax, ay);

    let thresh = k.konst();
    let is_edge = k.binary(OpKind::Cmp, thresh, mag);
    let sel = k.binary(OpKind::Select, is_edge, mag);
    let _st = k.store_at(&[x, y], sel);

    let _gx = k.loop_guard(x);
    let _gy = k.loop_guard(y);
    k.build()
}

/// `dct8`: one butterfly stage of an 8-point DCT — paired adds/subs with
/// coefficient multiplies, written back for the next stage.
pub fn dct8() -> Dfg {
    let mut k = KernelBuilder::new("dct8");
    let i = k.induction();

    let a0 = k.load_at(&[i]);
    let a1 = k.load_at(&[i]);
    let a2 = k.load_at(&[i]);
    let a3 = k.load_at(&[i]);

    let s0 = k.add(a0, a3);
    let d0 = k.sub(a0, a3);
    let s1 = k.add(a1, a2);
    let d1 = k.sub(a1, a2);

    let c0 = k.konst();
    let c1 = k.konst();
    let e0 = k.add(s0, s1);
    let e1 = k.sub(s0, s1);
    let o0m = k.mul(d0, c0);
    let o1m = k.mul(d1, c1);
    let o0 = k.add(o0m, o1m);
    let o1 = k.sub(o0m, o1m);

    let st0 = k.store_at(&[i], e0);
    let _st1 = k.store_at(&[i], e1);
    let _st2 = k.store_at(&[i], o0);
    let _st3 = k.store_at(&[i], o1);
    k.loop_dep(st0, a0, 2); // next stage reads this stage's output

    let _g = k.loop_guard(i);
    k.build()
}

/// `histogram`: binned counting with an indirect update —
/// `hist[bin(x)] += 1`, two samples per iteration.
pub fn histogram() -> Dfg {
    let mut k = KernelBuilder::new("histogram");
    let i = k.induction();

    let x1 = k.load_at(&[i]);
    let shift = k.konst();
    let bin1 = k.binary(OpKind::Shr, x1, shift);
    let h1 = k.load_at(&[bin1]);
    let one = k.konst();
    let inc1 = k.add(h1, one);
    let st1 = k.store_at(&[bin1], inc1);
    k.loop_dep(st1, h1, 1); // read-modify-write carried dependency

    let x2 = k.load_at(&[i]);
    let bin2 = k.binary(OpKind::Shr, x2, shift);
    let h2 = k.load_at(&[bin2]);
    let inc2 = k.add(h2, one);
    let st2 = k.store_at(&[bin2], inc2);
    k.loop_dep(st2, h2, 1);
    k.loop_dep(st1, h2, 1); // the two updates may alias

    // Third sample, with bin clamping (min(bin, MAX_BIN) via cmp/select).
    let x3 = k.load_at(&[i]);
    let bin3 = k.binary(OpKind::Shr, x3, shift);
    let max_bin = k.konst();
    let over = k.binary(OpKind::Cmp, max_bin, bin3);
    let clamped = k.binary(OpKind::Select, over, max_bin);
    let h3 = k.load_at(&[clamped]);
    let inc3 = k.add(h3, one);
    let st3 = k.store_at(&[clamped], inc3);
    k.loop_dep(st3, h3, 1);

    let _g = k.loop_guard(i);
    k.build()
}

/// `kmeans`: nearest-centroid assignment — two squared distances compared,
/// best index selected and written back.
pub fn kmeans() -> Dfg {
    let mut k = KernelBuilder::new("kmeans");
    let i = k.induction();
    let c = k.induction();

    let px = k.load_at(&[i]);
    let py = k.load_at(&[i]);

    let cx0 = k.load_at(&[c]);
    let cy0 = k.load_at(&[c]);
    let dx0 = k.sub(px, cx0);
    let dy0 = k.sub(py, cy0);
    let dx0s = k.mul(dx0, dx0);
    let dy0s = k.mul(dy0, dy0);
    let d0 = k.add(dx0s, dy0s);

    let cx1 = k.load_at(&[c]);
    let cy1 = k.load_at(&[c]);
    let dx1 = k.sub(px, cx1);
    let dy1 = k.sub(py, cy1);
    let dx1s = k.mul(dx1, dx1);
    let dy1s = k.mul(dy1, dy1);
    let d1 = k.add(dx1s, dy1s);

    let closer = k.binary(OpKind::Cmp, d0, d1);
    let best = k.binary(OpKind::Select, closer, d0);
    let _st_d = k.store_at(&[i], best);
    let tag = k.konst();
    let label = k.binary(OpKind::Select, closer, tag);
    let _st_l = k.store_at(&[i], label);

    let _g = k.loop_guard(c);
    k.build()
}

/// `backprop`: one dense-layer gradient step —
/// `w += η · δ · x` with the error accumulation for the previous layer.
pub fn backprop() -> Dfg {
    let mut k = KernelBuilder::new("backprop");
    let i = k.induction();
    let j = k.induction();

    let delta = k.load_at(&[j]);
    let x = k.load_at(&[i]);
    let eta = k.konst();
    let grad0 = k.mul(delta, x);
    let grad = k.mul(grad0, eta);

    // Momentum: v = μ·v_prev + grad, carried across iterations.
    let mu = k.konst();
    let v_prev = k.node(rewire_arch::OpKind::Phi);
    let mv = k.mul(mu, v_prev);
    let v = k.add(mv, grad);
    k.loop_dep(v, v_prev, 1);

    let w_addr = k.address(&[i, j]);
    let w = k.load(w_addr);
    let w_new = k.add(w, v);
    let st_w = k.store(w_addr, w_new);
    k.loop_dep(st_w, w, 1);

    // Error for the previous layer: err[i] += w · delta.
    let contrib = k.mul(w_new, delta);
    let err = k.accumulate(contrib, 1);
    let st_e = k.store_at(&[i], err);
    let ld_e = k.load_at(&[i]);
    k.loop_dep(st_e, ld_e, 1);
    let e2 = k.add(err, ld_e);
    let _st_e2 = k.store_at(&[i], e2);

    let _gj = k.loop_guard(j);
    k.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_has_six_taps() {
        let g = conv2d();
        let muls = g.nodes().filter(|n| n.op() == OpKind::Mul).count();
        assert_eq!(muls, 6);
    }

    #[test]
    fn histogram_has_aliasing_carried_dependencies() {
        let g = histogram();
        let carried_store_loads = g
            .edges()
            .filter(|e| e.is_loop_carried() && g.node(e.src()).op() == OpKind::Store)
            .count();
        assert!(carried_store_loads >= 3);
    }

    #[test]
    fn kmeans_is_pure_dataflow() {
        // No loop-carried edges beyond the induction self-loops: fully
        // pipelineable, RecMII 1.
        assert_eq!(kmeans().rec_mii(), 1);
    }

    #[test]
    fn all_signal_kernels_fit_the_band() {
        for g in [conv2d(), sobel(), dct8(), histogram(), kmeans(), backprop()] {
            assert!(
                (26..=51).contains(&g.num_nodes()),
                "{}: {} nodes",
                g.name(),
                g.num_nodes()
            );
            assert!(g.validate().is_ok());
            assert!(g.is_connected());
        }
    }
}
