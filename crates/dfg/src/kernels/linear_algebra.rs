//! PolyBench-style linear-algebra kernels (BLAS and solvers' inner loops).

use super::KernelBuilder;
use crate::Dfg;

/// `gesummv`: `y = α·A·x + β·B·x` — two simultaneous matrix–vector
/// accumulations combined with scalar weights.
pub fn gesummv() -> Dfg {
    let mut k = KernelBuilder::new("gesummv");
    let i = k.induction();
    let j = k.induction();

    let ld_a = k.load_at(&[i, j]);
    let ld_b = k.load_at(&[i, j]);
    let ld_x = k.load_at(&[j]);

    let t1 = k.mul(ld_a, ld_x);
    let t2 = k.mul(ld_b, ld_x);
    let acc1 = k.accumulate(t1, 1);
    let acc2 = k.accumulate(t2, 1);

    // Second A lane (partial inner unroll).
    let ld_a2 = k.load_at(&[i, j]);
    let ld_x2 = k.load_at(&[j]);
    let t3 = k.mul(ld_a2, ld_x2);
    let acc3 = k.accumulate(t3, 1);
    let a_lanes = k.add(acc1, acc3);

    let alpha = k.konst();
    let beta = k.konst();
    let s1 = k.mul(alpha, a_lanes);
    let s2 = k.mul(beta, acc2);
    let y = k.add(s1, s2);

    let st = k.store_at(&[i], y);
    let ld_prev = k.load_at(&[i]);
    k.loop_dep(st, ld_prev, 1); // y[i] written then read next row sweep
    let y2 = k.add(y, ld_prev);
    let _st2 = k.store_at(&[i], y2);

    let _g = k.loop_guard(j);
    k.build()
}

/// `atax`: `y = Aᵀ(A·x)` — matrix–vector product followed by a transposed
/// product, with a memory-carried dependency through `tmp`.
pub fn atax() -> Dfg {
    let mut k = KernelBuilder::new("atax");
    let i = k.induction();
    let j = k.induction();

    // tmp[i] += A[i][j] * x[j]
    let a_addr = k.address(&[i, j]);
    let ld_a = k.load(a_addr);
    let ld_x = k.load_at(&[j]);
    let scale = k.konst();
    let xs = k.mul(ld_x, scale);
    let t = k.mul(ld_a, xs);
    let tmp = k.accumulate(t, 1);

    // Second column lane (partial inner unroll).
    let ld_a3 = k.load_at(&[i, j]);
    let t3 = k.mul(ld_a3, xs);
    let tmp2 = k.accumulate(t3, 1);
    let comb = k.add(tmp, tmp2);
    let st_tmp = k.store_at(&[i], comb);

    // y[j] += A[i][j] * tmp[i]
    let ld_a2 = k.load(a_addr);
    let ld_tmp = k.load_at(&[i]);
    k.loop_dep(st_tmp, ld_tmp, 1);
    let t2 = k.mul(ld_a2, ld_tmp);
    let alpha = k.konst();
    let t2s = k.mul(t2, alpha);
    let ld_y = k.load_at(&[j]);
    let y2 = k.add(ld_y, t2s);
    let st_y = k.store_at(&[j], y2);
    k.loop_dep(st_y, ld_y, 1);

    let _gi = k.loop_guard(i);
    let _gj = k.loop_guard(j);
    k.build()
}

/// `bicg`: the BiCG sub-kernel — `s = Aᵀ·r` and `q = A·p` in one sweep.
pub fn bicg() -> Dfg {
    let mut k = KernelBuilder::new("bicg");
    let i = k.induction();
    let j = k.induction();

    let a_addr = k.address(&[i, j]);
    let ld_a = k.load(a_addr);

    // s[j] = s[j] + r[i] * A[i][j]
    let ld_r = k.load_at(&[i]);
    let t1 = k.mul(ld_r, ld_a);
    let ld_s = k.load_at(&[j]);
    let s2 = k.add(ld_s, t1);
    let st_s = k.store_at(&[j], s2);
    k.loop_dep(st_s, ld_s, 1);

    // q[i] = q[i] + A[i][j] * p[j]
    let ld_p = k.load_at(&[j]);
    let t2 = k.mul(ld_a, ld_p);
    let q = k.accumulate(t2, 1);

    // Second q lane (partial inner unroll).
    let ld_p2 = k.load_at(&[j]);
    let t3 = k.mul(ld_a, ld_p2);
    let q3 = k.accumulate(t3, 1);
    let qsum = k.add(q, q3);
    let st_q = k.store_at(&[i], qsum);
    let ld_q = k.load_at(&[i]);
    k.loop_dep(st_q, ld_q, 1);
    let q2 = k.add(q, ld_q);
    let _st_q2 = k.store_at(&[i], q2);

    let _gj = k.loop_guard(j);
    k.build()
}

/// `mvt`: `x1 += A·y1` and `x2 += Aᵀ·y2` fused in one loop nest.
pub fn mvt() -> Dfg {
    let mut k = KernelBuilder::new("mvt");
    let i = k.induction();
    let j = k.induction();

    let a_addr = k.address(&[i, j]);
    let ld_a = k.load(a_addr);
    let at_addr = k.address(&[j, i]);
    let ld_at = k.load(at_addr);

    let ld_y1 = k.load_at(&[j]);
    let t1 = k.mul(ld_a, ld_y1);
    let x1 = k.accumulate(t1, 1);

    // Second lane (partial inner unroll).
    let ld_a2 = k.load_at(&[i, j]);
    let ld_y1b = k.load_at(&[j]);
    let t1b = k.mul(ld_a2, ld_y1b);
    let x1b = k.accumulate(t1b, 1);
    let x1sum = k.add(x1, x1b);
    let st_x1 = k.store_at(&[i], x1sum);
    let ld_x1 = k.load_at(&[i]);
    k.loop_dep(st_x1, ld_x1, 1);

    let ld_y2 = k.load_at(&[j]);
    let t2 = k.mul(ld_at, ld_y2);
    let x2 = k.accumulate(t2, 1);
    let sum = k.add(ld_x1, x2);
    let _st_x2 = k.store_at(&[i], sum);

    let _gi = k.loop_guard(i);
    let _gj = k.loop_guard(j);
    k.build()
}

/// `gemver`: `A ← A + u1·v1ᵀ + u2·v2ᵀ`, then `x ← β·Aᵀ·y + z`, then
/// `w ← α·A·x` — the suite's largest kernel.
pub fn gemver() -> Dfg {
    let mut k = KernelBuilder::new("gemver");
    let i = k.induction();
    let j = k.induction();

    // A[i][j] += u1[i]*v1[j] + u2[i]*v2[j]
    let ld_u1 = k.load_at(&[i]);
    let ld_v1 = k.load_at(&[j]);
    let ld_u2 = k.load_at(&[i]);
    let ld_v2 = k.load_at(&[j]);
    let p1 = k.mul(ld_u1, ld_v1);
    let p2 = k.mul(ld_u2, ld_v2);
    let outer = k.add(p1, p2);
    let a_addr = k.address(&[i, j]);
    let ld_a = k.load(a_addr);
    let a_new = k.add(ld_a, outer);
    let st_a = k.store(a_addr, a_new);
    k.loop_dep(st_a, ld_a, 1);

    // x[i] = beta * A^T[j][i] * y[j] + z[i]
    let beta = k.konst();
    let ld_y = k.load_at(&[j]);
    let t = k.mul(a_new, ld_y);
    let acc_x = k.accumulate(t, 1);
    let bx = k.mul(beta, acc_x);
    let ld_z = k.load_at(&[i]);
    let x = k.add(bx, ld_z);
    let st_x = k.store_at(&[i], x);

    // w[i] = alpha * A[i][j] * x[j]
    let alpha = k.konst();
    let ld_x = k.load_at(&[j]);
    k.loop_dep(st_x, ld_x, 1);
    let t2 = k.mul(a_new, ld_x);
    let acc_w = k.accumulate(t2, 1);
    let w = k.mul(alpha, acc_w);
    let _st_w = k.store_at(&[i], w);

    let _gj = k.loop_guard(j);
    k.build()
}

/// `gemm`: `C = α·A·B + β·C`.
pub fn gemm() -> Dfg {
    let mut k = KernelBuilder::new("gemm");
    let i = k.induction();
    let j = k.induction();
    let p = k.induction();

    // Two MAC lanes over the reduction dimension (partial inner unroll),
    // the shape a vectorising front-end hands a CGRA mapper.
    let a_addr = k.address(&[i, p]);
    let ld_a = k.load(a_addr);
    let b_addr = k.address(&[p, j]);
    let ld_b = k.load(b_addr);
    let t = k.mul(ld_a, ld_b);
    let acc = k.accumulate(t, 1);

    let ld_a2 = k.load_at(&[i, p]);
    let ld_b2 = k.load_at(&[p, j]);
    let t2 = k.mul(ld_a2, ld_b2);
    let acc2 = k.accumulate(t2, 1);
    let lanes = k.add(acc, acc2);

    let alpha = k.konst();
    let at = k.mul(alpha, lanes);
    let c_addr = k.address(&[i, j]);
    let ld_c = k.load(c_addr);
    let beta = k.konst();
    let bc = k.mul(beta, ld_c);
    let c_new = k.add(at, bc);
    let st_c = k.store(c_addr, c_new);
    k.loop_dep(st_c, ld_c, 1);

    let _gp = k.loop_guard(p);
    let _gj = k.loop_guard(j);
    k.build()
}

/// `syrk`: symmetric rank-k update `C = α·A·Aᵀ + β·C`.
pub fn syrk() -> Dfg {
    let mut k = KernelBuilder::new("syrk");
    let i = k.induction();
    let j = k.induction();
    let p = k.induction();

    let ld_a1 = k.load_at(&[i, p]);
    let ld_a2 = k.load_at(&[j, p]);
    let t = k.mul(ld_a1, ld_a2);
    let alpha = k.konst();
    let ta = k.mul(t, alpha);
    let acc = k.accumulate(ta, 1);

    // Second reduction lane (partial inner unroll).
    let ld_a3 = k.load_at(&[i, p]);
    let ld_a4 = k.load_at(&[j, p]);
    let t2 = k.mul(ld_a3, ld_a4);
    let ta2 = k.mul(t2, alpha);
    let acc2 = k.accumulate(ta2, 1);
    let lanes = k.add(acc, acc2);

    let c_addr = k.address(&[i, j]);
    let ld_c = k.load(c_addr);
    let beta = k.konst();
    let bc = k.mul(beta, ld_c);
    let c_new = k.add(lanes, bc);
    let st_c = k.store(c_addr, c_new);
    k.loop_dep(st_c, ld_c, 1);

    let _gp = k.loop_guard(p);
    let _gj = k.loop_guard(j);
    k.build()
}

/// `syr2k`: symmetric rank-2k update `C = α·A·Bᵀ + α·B·Aᵀ + β·C`.
pub fn syr2k() -> Dfg {
    let mut k = KernelBuilder::new("syr2k");
    let i = k.induction();
    let j = k.induction();
    let p = k.induction();

    let ld_a1 = k.load_at(&[i, p]);
    let ld_b1 = k.load_at(&[j, p]);
    let ld_b2 = k.load_at(&[i, p]);
    let ld_a2 = k.load_at(&[j, p]);
    let t1 = k.mul(ld_a1, ld_b1);
    let t2 = k.mul(ld_b2, ld_a2);
    let sum = k.add(t1, t2);
    let alpha = k.konst();
    let ts = k.mul(sum, alpha);
    let acc = k.accumulate(ts, 1);

    // Second rank-2 lane (partial inner unroll).
    let ld_a5 = k.load_at(&[i, p]);
    let ld_b5 = k.load_at(&[j, p]);
    let t5 = k.mul(ld_a5, ld_b5);
    let ts2 = k.mul(t5, alpha);
    let acc5 = k.accumulate(ts2, 1);
    let acc_all = k.add(acc, acc5);

    let c_addr = k.address(&[i, j]);
    let ld_c = k.load(c_addr);
    let beta = k.konst();
    let bc = k.mul(beta, ld_c);
    let c_new = k.add(acc_all, bc);
    let st_c = k.store(c_addr, c_new);
    k.loop_dep(st_c, ld_c, 1);

    let _gp = k.loop_guard(p);
    let _gj = k.loop_guard(j);
    k.build()
}

/// `trmm`: triangular matrix multiply `B = α·A·B` (lower-triangular `A`).
pub fn trmm() -> Dfg {
    let mut k = KernelBuilder::new("trmm");
    let i = k.induction();
    let j = k.induction();
    let p = k.induction();

    let ld_a = k.load_at(&[p, i]);
    let b_addr = k.address(&[p, j]);
    let ld_b = k.load(b_addr);
    let t = k.mul(ld_a, ld_b);
    let acc = k.accumulate(t, 1);

    // Second triangular lane (partial inner unroll).
    let ld_a2 = k.load_at(&[p, i]);
    let ld_b2 = k.load_at(&[p, j]);
    let t2 = k.mul(ld_a2, ld_b2);
    let acc2 = k.accumulate(t2, 1);
    let lanes0 = k.add(acc, acc2);

    // Third triangular lane.
    let ld_a3 = k.load_at(&[p, i]);
    let ld_b3 = k.load_at(&[p, j]);
    let t3 = k.mul(ld_a3, ld_b3);
    let acc3 = k.accumulate(t3, 1);
    let lanes = k.add(lanes0, acc3);

    let bij_addr = k.address(&[i, j]);
    let ld_bij = k.load(bij_addr);
    let sum = k.add(ld_bij, lanes);
    let alpha = k.konst();
    let scaled = k.mul(alpha, sum);
    let st_b = k.store(bij_addr, scaled);
    k.loop_dep(st_b, ld_b, 2); // updated row feeds later iterations

    let _gp = k.loop_guard(p);
    let _gj = k.loop_guard(j);
    k.build()
}

/// `doitgen`: multi-resolution analysis kernel
/// `sum[p] += A[r][q][s] · C4[s][p]` with 3-D addressing.
pub fn doitgen() -> Dfg {
    let mut k = KernelBuilder::new("doitgen");
    let r = k.induction();
    let q = k.induction();
    let s = k.induction();
    let p = k.induction();

    let a_addr = k.address(&[r, q, s]);
    let ld_a = k.load(a_addr);
    let c4_addr = k.address(&[s, p]);
    let ld_c4 = k.load(c4_addr);
    let t = k.mul(ld_a, ld_c4);
    let acc = k.accumulate(t, 1);

    // Second lane over `s` (partial inner unroll).
    let a2_addr = k.address(&[r, q, s]);
    let ld_a2 = k.load(a2_addr);
    let c42_addr = k.address(&[s, p]);
    let ld_c42 = k.load(c42_addr);
    let t2 = k.mul(ld_a2, ld_c42);
    let acc2 = k.accumulate(t2, 1);
    let lanes0 = k.add(acc, acc2);

    // Third lane over `s`.
    let a3_addr = k.address(&[r, q, s]);
    let ld_a3 = k.load(a3_addr);
    let c43_addr = k.address(&[s, p]);
    let ld_c43 = k.load(c43_addr);
    let t3 = k.mul(ld_a3, ld_c43);
    let acc3 = k.accumulate(t3, 1);
    let lanes = k.add(lanes0, acc3);

    let sum_addr = k.address(&[p]);
    let st_sum = k.store(sum_addr, lanes);
    let ld_sum = k.load(sum_addr);
    k.loop_dep(st_sum, ld_sum, 1);
    let a_out = k.address(&[r, q, p]);
    let _st_a = k.store(a_out, ld_sum);

    let _gs = k.loop_guard(s);
    let _gp = k.loop_guard(p);
    k.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gesummv_has_three_reductions() {
        let g = gesummv();
        let phis = g
            .nodes()
            .filter(|n| n.op() == rewire_arch::OpKind::Phi)
            .count();
        assert_eq!(phis, 3); // two A lanes + the B lane
    }

    #[test]
    fn gemver_is_the_largest() {
        let sizes: Vec<(String, usize)> = [
            gesummv(),
            atax(),
            bicg(),
            mvt(),
            gemver(),
            gemm(),
            syrk(),
            syr2k(),
            trmm(),
            doitgen(),
        ]
        .into_iter()
        .map(|d| (d.name().to_string(), d.num_nodes()))
        .collect();
        let max = sizes.iter().max_by_key(|(_, n)| *n).unwrap();
        assert_eq!(max.0, "gemver");
    }

    #[test]
    fn memory_carried_dependencies_present() {
        for g in [atax(), bicg(), gemm(), trmm()] {
            assert!(
                g.edges()
                    .any(|e| e.is_loop_carried()
                        && g.node(e.src()).op() == rewire_arch::OpKind::Store),
                "{} needs a store→load carried dependency",
                g.name()
            );
        }
    }
}
