//! MachSuite-style accelerator kernels.

use super::KernelBuilder;
use crate::Dfg;
use rewire_arch::OpKind;

/// `md-knn`: molecular-dynamics pairwise Lennard-Jones force over a
/// k-nearest-neighbour list — the suite's widest kernel (three parallel
/// force accumulations).
pub fn md_knn() -> Dfg {
    let mut k = KernelBuilder::new("md-knn");
    let i = k.induction();
    let jj = k.induction();

    // Gather the neighbour's coordinates through the index list.
    let ld_nbr = k.load_at(&[i, jj]);
    let xi = k.load_at(&[i]);
    let yi = k.load_at(&[i]);
    let zi = k.load_at(&[i]);
    let xj = k.load_at(&[ld_nbr]);
    let yj = k.load_at(&[ld_nbr]);
    let zj = k.load_at(&[ld_nbr]);

    let dx = k.sub(xi, xj);
    let dy = k.sub(yi, yj);
    let dz = k.sub(zi, zj);
    let dx2 = k.mul(dx, dx);
    let dy2 = k.mul(dy, dy);
    let dz2 = k.mul(dz, dz);
    let r2a = k.add(dx2, dy2);
    let r2 = k.add(r2a, dz2);

    // LJ potential: r6inv·(r6inv − 0.5) / r2 style force magnitude.
    let one = k.konst();
    let r2inv = k.div(one, r2);
    let r4inv = k.mul(r2inv, r2inv);
    let r6inv = k.mul(r4inv, r2inv);
    let half = k.konst();
    let shifted = k.sub(r6inv, half);
    let pot = k.mul(r6inv, shifted);

    let fx = k.mul(pot, dx);
    let fy = k.mul(pot, dy);
    let fz = k.mul(pot, dz);
    let ax = k.accumulate(fx, 1);
    let ay = k.accumulate(fy, 1);
    let az = k.accumulate(fz, 1);
    let _sx = k.store_at(&[i], ax);
    let _sy = k.store_at(&[i], ay);
    let _sz = k.store_at(&[i], az);

    let _g = k.loop_guard(jj);
    k.build()
}

/// `spmv`: sparse matrix–vector multiply over CRS storage, two
/// non-zeros per iteration.
pub fn spmv() -> Dfg {
    let mut k = KernelBuilder::new("spmv");
    let i = k.induction();
    let jj = k.induction();

    let row_end = k.load_at(&[i]);
    let in_row = k.binary(OpKind::Cmp, jj, row_end);

    // Lane 1: val[jj] * x[col[jj]].
    let ld_val = k.load_at(&[jj]);
    let ld_col = k.load_at(&[jj]);
    let ld_x = k.load_at(&[ld_col]);
    let t = k.mul(ld_val, ld_x);
    let acc = k.accumulate(t, 1);

    // Lane 2 (next non-zero).
    let ld_val2 = k.load_at(&[jj]);
    let ld_col2 = k.load_at(&[jj]);
    let ld_x2 = k.load_at(&[ld_col2]);
    let t2 = k.mul(ld_val2, ld_x2);
    let acc2 = k.accumulate(t2, 1);

    // Lane 3.
    let ld_val3 = k.load_at(&[jj]);
    let ld_col3 = k.load_at(&[jj]);
    let ld_x3 = k.load_at(&[ld_col3]);
    let t3 = k.mul(ld_val3, ld_x3);
    let acc3 = k.accumulate(t3, 1);

    let sum0 = k.add(acc, acc2);
    let sum = k.add(sum0, acc3);
    let gated = k.binary(OpKind::Select, in_row, sum);
    let _st = k.store_at(&[i], gated);

    let _g = k.loop_guard(i);
    k.build()
}

/// `fft`: one radix-2 butterfly — complex twiddle multiply and the
/// add/sub recombination, with stage-to-stage memory carry.
pub fn fft() -> Dfg {
    let mut k = KernelBuilder::new("fft");
    let idx = k.induction();
    let span = k.induction();

    let er = k.load_at(&[idx]);
    let ei = k.load_at(&[idx]);
    let or_ = k.load_at(&[idx, span]);
    let oi = k.load_at(&[idx, span]);
    let wr = k.load_at(&[idx]);
    let wi = k.load_at(&[idx]);

    // (or + i·oi)·(wr + i·wi)
    let m1 = k.mul(or_, wr);
    let m2 = k.mul(oi, wi);
    let tr = k.sub(m1, m2);
    let m3 = k.mul(or_, wi);
    let m4 = k.mul(oi, wr);
    let ti = k.add(m3, m4);

    let out_er = k.add(er, tr);
    let out_ei = k.add(ei, ti);
    let out_or = k.sub(er, tr);
    let out_oi = k.sub(ei, ti);

    let st_er = k.store_at(&[idx], out_er);
    let _st_ei = k.store_at(&[idx], out_ei);
    let st_or = k.store_at(&[idx, span], out_or);
    let _st_oi = k.store_at(&[idx, span], out_oi);

    // The next FFT stage reads what this one wrote.
    k.loop_dep(st_er, er, 2);
    k.loop_dep(st_or, or_, 2);

    let _g = k.loop_guard(idx);
    k.build()
}

/// `viterbi`: one trellis step — best-predecessor selection with
/// backpointer store.
pub fn viterbi() -> Dfg {
    let mut k = KernelBuilder::new("viterbi");
    let t = k.induction();
    let s = k.induction();

    let p0 = k.load_at(&[s]);
    let p1 = k.load_at(&[s]);
    let t0 = k.load_at(&[s]);
    let t1 = k.load_at(&[s]);
    let em = k.load_at(&[t, s]);

    let c0 = k.add(p0, t0);
    let c1 = k.add(p1, t1);
    let better = k.binary(OpKind::Cmp, c0, c1);
    let best01 = k.binary(OpKind::Select, better, c0);

    // Third predecessor state.
    let p2 = k.load_at(&[s]);
    let t2c = k.load_at(&[s]);
    let c2 = k.add(p2, t2c);
    let better2 = k.binary(OpKind::Cmp, best01, c2);
    let best = k.binary(OpKind::Select, better2, best01);
    let tot = k.add(best, em);
    let st = k.store_at(&[s], tot);
    k.loop_dep(st, p0, 2);
    k.loop_dep(st, p1, 2);
    k.loop_dep(st, p2, 2);

    let tag = k.konst();
    let bp = k.binary(OpKind::Select, better, tag);
    let _st_bp = k.store_at(&[t, s], bp);

    let _gs = k.loop_guard(s);
    let _gt = k.loop_guard(t);
    k.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_knn_has_three_accumulators() {
        let g = md_knn();
        let phis = g.nodes().filter(|n| n.op() == OpKind::Phi).count();
        assert_eq!(phis, 3);
    }

    #[test]
    fn spmv_gathers_through_index_loads() {
        // x is indexed by a loaded column index: a load whose address input
        // is itself fed by another load.
        let g = spmv();
        let indirect = g.nodes().any(|n| {
            n.op() == OpKind::Addr && g.parents(n.id()).any(|p| g.node(p).op() == OpKind::Load)
        });
        assert!(indirect);
    }

    #[test]
    fn fft_butterfly_balance() {
        let g = fft();
        let count = |op: OpKind| g.nodes().filter(|n| n.op() == op).count();
        assert_eq!(count(OpKind::Mul), 4);
        assert_eq!(count(OpKind::Store), 4);
        assert_eq!(count(OpKind::Load), 6);
    }

    #[test]
    fn viterbi_trellis_is_recurrence_bound() {
        assert!(viterbi().rec_mii() >= 2);
    }
}
