//! Stencil kernels (PolyBench jacobi/seidel, MachSuite stencil3d).

use super::KernelBuilder;
use crate::Dfg;

/// `jacobi2d`: 5-point Jacobi relaxation with the B→A copy-back phase.
pub fn jacobi2d() -> Dfg {
    let mut k = KernelBuilder::new("jacobi2d");
    let i = k.induction();
    let j = k.induction();

    let c = k.load_at(&[i, j]);
    let w = k.load_at(&[i, j]);
    let e = k.load_at(&[i, j]);
    let n = k.load_at(&[i, j]);
    let s = k.load_at(&[i, j]);

    let s1 = k.add(c, w);
    let s2 = k.add(s1, e);
    let s3 = k.add(s2, n);
    let s4 = k.add(s3, s);
    let fifth = k.konst();
    let out = k.mul(s4, fifth);
    let st_b = k.store_at(&[i, j], out);

    // Copy-back: A[i][j] = B[i][j] from the previous sweep.
    let ld_b = k.load_at(&[i, j]);
    k.loop_dep(st_b, ld_b, 1);
    let st_a = k.store_at(&[i, j], ld_b);
    k.loop_dep(st_a, c, 2);

    // Convergence residual: Σ |out − centre|.
    let res = k.sub(out, c);
    let mask = k.konst();
    let abs_res = k.binary(rewire_arch::OpKind::And, res, mask);
    let _res_acc = k.accumulate(abs_res, 1);

    let _gi = k.loop_guard(i);
    let _gj = k.loop_guard(j);
    k.build()
}

/// `seidel2d`: 9-point Gauss–Seidel sweep. In-place updates make the west
/// and north-west neighbours loop-carried.
pub fn seidel2d() -> Dfg {
    let mut k = KernelBuilder::new("seidel2d");
    let i = k.induction();
    let j = k.induction();

    let nw = k.load_at(&[i, j]);
    let n = k.load_at(&[i, j]);
    let ne = k.load_at(&[i, j]);
    let w = k.load_at(&[i, j]);
    let c = k.load_at(&[i, j]);
    let e = k.load_at(&[i, j]);
    let sw = k.load_at(&[i, j]);
    let s = k.load_at(&[i, j]);
    let se = k.load_at(&[i, j]);

    let s1 = k.add(nw, n);
    let s2 = k.add(s1, ne);
    let s3 = k.add(s2, w);
    let s4 = k.add(s3, c);
    let s5 = k.add(s4, e);
    let s6 = k.add(s5, sw);
    let s7 = k.add(s6, s);
    let s8 = k.add(s7, se);
    let ninth = k.konst();
    let out = k.div(s8, ninth);
    let st = k.store_at(&[i, j], out);

    // Seidel in-place property: this iteration's store feeds the next
    // iteration's west/north-west loads.
    k.loop_dep(st, w, 3);
    k.loop_dep(st, nw, 4);

    let _gi = k.loop_guard(i);
    let _gj = k.loop_guard(j);
    k.build()
}

/// `stencil3d` (MachSuite): 7-point 3-D stencil with separate centre and
/// neighbour coefficients.
pub fn stencil3d() -> Dfg {
    let mut k = KernelBuilder::new("stencil3d");
    let i = k.induction();
    let j = k.induction();
    let l = k.induction();

    let c = k.load_at(&[i, j, l]);
    let xm = k.load_at(&[i, j, l]);
    let xp = k.load_at(&[i, j, l]);
    let ym = k.load_at(&[i, j, l]);
    let yp = k.load_at(&[i, j, l]);
    let zm = k.load_at(&[i, j, l]);
    let zp = k.load_at(&[i, j, l]);

    let s1 = k.add(xm, xp);
    let s2 = k.add(s1, ym);
    let s3 = k.add(s2, yp);
    let s4 = k.add(s3, zm);
    let s5 = k.add(s4, zp);

    let c0 = k.konst();
    let c1 = k.konst();
    let centre = k.mul(c0, c);
    let nbrs = k.mul(c1, s5);
    let out = k.add(centre, nbrs);
    let st = k.store_at(&[i, j, l], out);
    k.loop_dep(st, c, 2); // next sweep reads this sweep's output

    let _gl = k.loop_guard(l);
    let _gj = k.loop_guard(j);
    k.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seidel_is_loop_carried_jacobi_is_sweep_carried() {
        // Both have carried edges, but seidel's carry closes a cycle through
        // the in-place update (higher RecMII than jacobi's sweep-to-sweep
        // dependency which spans the full 9-op reduction).
        assert!(seidel2d().rec_mii() >= 2);
        assert!(jacobi2d().edges().any(|e| e.is_loop_carried()));
    }

    #[test]
    fn stencil_load_counts() {
        use rewire_arch::OpKind;
        let loads = |d: &Dfg| d.nodes().filter(|n| n.op() == OpKind::Load).count();
        assert_eq!(loads(&jacobi2d()), 6); // 5 points + copy-back read
        assert_eq!(loads(&seidel2d()), 9);
        assert_eq!(loads(&stencil3d()), 7);
    }
}
