//! A benchmark suite of loop-kernel DFGs.
//!
//! The Rewire paper evaluates on compute-intensive loop kernels drawn from
//! PolyBench, MachSuite and MiBench, with 26–51 DFG nodes (average 38). The
//! kernels here are hand-built DFGs of the same inner-loop bodies: every
//! array access carries its address arithmetic, reductions lower to
//! `Phi`/`Add` recurrences, induction variables are self-incrementing `Addr`
//! nodes, and memory-carried dependencies (LU-style factorizations) appear
//! as loop-carried store→load edges. See `DESIGN.md` §2 for why this
//! substitution preserves the mapping-difficulty profile.
//!
//! # Examples
//!
//! ```
//! use rewire_dfg::kernels;
//! let suite = kernels::all();
//! assert!(suite.len() >= 20);
//! for (name, dfg) in &suite {
//!     assert!(dfg.num_nodes() >= 26 && dfg.num_nodes() <= 51, "{name}");
//! }
//! let atax = kernels::by_name("atax").unwrap();
//! let unrolled = kernels::by_name("atax(u)").unwrap();
//! assert_eq!(unrolled.num_nodes(), 2 * atax.num_nodes());
//! ```

mod factorization;
mod linear_algebra;
mod machsuite;
mod mibench;
mod signal;
mod stencils;

pub use factorization::{cholesky, gramschmidt, lu, ludcmp};
pub use linear_algebra::{atax, bicg, doitgen, gemm, gemver, gesummv, mvt, syr2k, syrk, trmm};
pub use machsuite::{fft, md_knn, spmv, viterbi};
pub use mibench::{fir, sha, susan};
pub use signal::{backprop, conv2d, dct8, histogram, kmeans, sobel};
pub use stencils::{jacobi2d, seidel2d, stencil3d};

use crate::{Dfg, NodeId};
use rewire_arch::OpKind;

/// Every base kernel in the suite, with its canonical name.
pub fn all() -> Vec<(&'static str, Dfg)> {
    vec![
        ("gramschmidt", gramschmidt()),
        ("ludcmp", ludcmp()),
        ("lu", lu()),
        ("gemver", gemver()),
        ("cholesky", cholesky()),
        ("gesummv", gesummv()),
        ("atax", atax()),
        ("bicg", bicg()),
        ("mvt", mvt()),
        ("gemm", gemm()),
        ("syrk", syrk()),
        ("syr2k", syr2k()),
        ("trmm", trmm()),
        ("doitgen", doitgen()),
        ("jacobi2d", jacobi2d()),
        ("seidel2d", seidel2d()),
        ("stencil3d", stencil3d()),
        ("md-knn", md_knn()),
        ("spmv", spmv()),
        ("fft", fft()),
        ("viterbi", viterbi()),
        ("fir", fir()),
        ("susan", susan()),
        ("sha", sha()),
        ("conv2d", conv2d()),
        ("sobel", sobel()),
        ("dct8", dct8()),
        ("histogram", histogram()),
        ("kmeans", kmeans()),
        ("backprop", backprop()),
    ]
}

/// Looks a kernel up by name. `"<name>(u)"` resolves to the unroll-by-2
/// variant, following the paper's notation, and `"<name>(uN)"` (e.g.
/// `"fir(u4)"`) to the unroll-by-`N` variant used by the fabric-scaling
/// suite — bigger fabrics need proportionally bigger kernels before the
/// map-time curve measures anything but fixed overhead.
pub fn by_name(name: &str) -> Option<Dfg> {
    if let Some(base) = name.strip_suffix("(u)") {
        return by_name(base).map(|d| d.unroll(2));
    }
    if let Some((base, rest)) = name.split_once("(u") {
        let factor: u32 = rest.strip_suffix(')').and_then(|f| f.parse().ok())?;
        if factor >= 2 {
            return by_name(base).map(|d| d.unroll(factor));
        }
        return None;
    }
    all().into_iter().find(|(n, _)| *n == name).map(|(_, d)| d)
}

/// Builder with loop-kernel idioms: auto-named nodes, address arithmetic,
/// loads/stores, and `Phi`-based accumulators.
///
/// All the bundled kernels are written against this API, and downstream
/// users can construct their own kernels the same way.
///
/// # Examples
///
/// ```
/// use rewire_dfg::kernels::KernelBuilder;
/// let mut k = KernelBuilder::new("dot");
/// let i = k.induction();
/// let a = k.load_at(&[i]);
/// let b = k.load_at(&[i]);
/// let prod = k.mul(a, b);
/// let _sum = k.accumulate(prod, 1);
/// let dfg = k.build();
/// assert!(dfg.validate().is_ok());
/// assert_eq!(dfg.rec_mii(), 2); // the accumulator recurrence
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    dfg: Dfg,
    counter: usize,
}

impl KernelBuilder {
    /// Starts a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            dfg: Dfg::new(name),
            counter: 0,
        }
    }

    fn fresh(&mut self, op: OpKind) -> NodeId {
        let n = self.counter;
        self.counter += 1;
        self.dfg.add_node(format!("{}{n}", op.mnemonic()), op)
    }

    fn connect(&mut self, src: NodeId, dst: NodeId) {
        self.dfg
            .add_edge(src, dst, 0)
            .expect("builder edges are valid");
    }

    /// A raw node with no operands.
    pub fn node(&mut self, op: OpKind) -> NodeId {
        self.fresh(op)
    }

    /// A constant / immediate.
    pub fn konst(&mut self) -> NodeId {
        self.fresh(OpKind::Const)
    }

    /// A self-incrementing induction variable (`i = i + stride` in one ALU
    /// op): an `Addr` node with a distance-1 self-loop.
    pub fn induction(&mut self) -> NodeId {
        let n = self.fresh(OpKind::Addr);
        self.dfg
            .add_edge(n, n, 1)
            .expect("self loop with distance 1");
        n
    }

    /// A unary operation.
    pub fn unary(&mut self, op: OpKind, a: NodeId) -> NodeId {
        let n = self.fresh(op);
        self.connect(a, n);
        n
    }

    /// A binary operation.
    pub fn binary(&mut self, op: OpKind, a: NodeId, b: NodeId) -> NodeId {
        let n = self.fresh(op);
        self.connect(a, n);
        self.connect(b, n);
        n
    }

    /// `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(OpKind::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(OpKind::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(OpKind::Mul, a, b)
    }

    /// `a / b`.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(OpKind::Div, a, b)
    }

    /// `sqrt(a)`.
    pub fn sqrt(&mut self, a: NodeId) -> NodeId {
        self.unary(OpKind::Sqrt, a)
    }

    /// An address computation combining index operands (base constants are
    /// folded into the `Addr` op itself).
    pub fn address(&mut self, indices: &[NodeId]) -> NodeId {
        let n = self.fresh(OpKind::Addr);
        for &i in indices {
            self.connect(i, n);
        }
        n
    }

    /// A load from an explicit address node.
    pub fn load(&mut self, addr: NodeId) -> NodeId {
        self.unary(OpKind::Load, addr)
    }

    /// Address computation from `indices` followed by a load — the common
    /// `A[f(i,j)]` idiom (two nodes).
    pub fn load_at(&mut self, indices: &[NodeId]) -> NodeId {
        let a = self.address(indices);
        self.load(a)
    }

    /// A store of `value` to an explicit address node.
    pub fn store(&mut self, addr: NodeId, value: NodeId) -> NodeId {
        let n = self.fresh(OpKind::Store);
        self.connect(addr, n);
        self.connect(value, n);
        n
    }

    /// Address computation followed by a store (two nodes).
    pub fn store_at(&mut self, indices: &[NodeId], value: NodeId) -> NodeId {
        let a = self.address(indices);
        self.store(a, value)
    }

    /// A reduction accumulator: `acc = acc ⊕ increment`, carried `distance`
    /// iterations. Lowers to `Phi → Add → (back-edge to Phi)` and returns
    /// the `Add` (the live-out sum).
    pub fn accumulate(&mut self, increment: NodeId, distance: u32) -> NodeId {
        let phi = self.fresh(OpKind::Phi);
        let add = self.add(phi, increment);
        self.dfg.add_edge(add, phi, distance).expect("back edge");
        add
    }

    /// A value carried from `distance` iterations ago: `Phi` fed by `value`
    /// through a loop-carried edge. Returns the `Phi`.
    pub fn carried(&mut self, value: NodeId, distance: u32) -> NodeId {
        let phi = self.fresh(OpKind::Phi);
        self.dfg.add_edge(value, phi, distance).expect("back edge");
        phi
    }

    /// An explicit loop-carried dependency between two existing nodes, e.g.
    /// a store feeding a later iteration's load (memory-carried dependency).
    pub fn loop_dep(&mut self, src: NodeId, dst: NodeId, distance: u32) {
        self.dfg
            .add_edge(src, dst, distance)
            .expect("loop-carried edge");
    }

    /// A loop-exit predicate: `cmp(i, bound)` with a fresh bound constant.
    pub fn loop_guard(&mut self, i: NodeId) -> NodeId {
        let bound = self.konst();
        self.binary(OpKind::Cmp, i, bound)
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the constructed graph is invalid — a builder bug, since
    /// every combinator only adds legal edges.
    pub fn build(self) -> Dfg {
        self.dfg
            .validate()
            .expect("kernel builder produces valid graphs");
        self.dfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::presets;

    #[test]
    fn suite_matches_paper_size_band() {
        let suite = all();
        assert!(suite.len() >= 20, "need a realistic suite");
        let sizes: Vec<usize> = suite.iter().map(|(_, d)| d.num_nodes()).collect();
        for ((name, _), &n) in suite.iter().zip(&sizes) {
            assert!((26..=51).contains(&n), "{name} has {n} nodes");
        }
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (33.0..=43.0).contains(&avg),
            "average size {avg} should be near the paper's 38"
        );
    }

    #[test]
    fn all_kernels_valid_connected_and_mappable_in_principle() {
        let cgra = presets::paper_4x4_r4();
        for (name, dfg) in all() {
            assert!(dfg.validate().is_ok(), "{name}");
            assert!(dfg.is_connected(), "{name}");
            let mii = dfg.mii(&cgra).unwrap_or_else(|| panic!("{name}: no MII"));
            assert!((1..=12).contains(&mii), "{name}: MII {mii}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for (name, _) in all() {
            assert!(seen.insert(name), "duplicate kernel {name}");
        }
    }

    #[test]
    fn by_name_resolves_base_and_unrolled() {
        assert!(by_name("cholesky").is_some());
        assert!(by_name("nonexistent").is_none());
        let u = by_name("lu(u)").unwrap();
        assert_eq!(u.num_nodes(), 2 * by_name("lu").unwrap().num_nodes());
        assert_eq!(u.name(), "lu(u)");
    }

    #[test]
    fn by_name_resolves_scaled_unroll_factors() {
        let base = by_name("fir").unwrap();
        for factor in [2u32, 4, 8] {
            let scaled = by_name(&format!("fir(u{factor})")).unwrap();
            assert_eq!(scaled.num_nodes(), factor as usize * base.num_nodes());
            assert!(scaled.validate().is_ok(), "factor {factor}");
        }
        // `(u2)` and `(u)` are the same transform; only the label differs.
        assert_eq!(
            by_name("fir(u2)").unwrap().num_nodes(),
            by_name("fir(u)").unwrap().num_nodes()
        );
        assert!(by_name("fir(u1)").is_none(), "factor below 2 is rejected");
        assert!(by_name("fir(uX)").is_none());
        assert!(by_name("nonexistent(u4)").is_none());
    }

    #[test]
    fn every_kernel_has_memory_ops() {
        for (name, dfg) in all() {
            assert!(dfg.num_memory_ops() > 0, "{name} touches no memory");
        }
    }

    #[test]
    fn builder_accumulator_shape() {
        let mut k = KernelBuilder::new("t");
        let c = k.konst();
        let acc = k.accumulate(c, 1);
        let dfg = k.build();
        assert_eq!(dfg.rec_mii(), 2);
        assert_eq!(dfg.parents(acc).count(), 2);
    }

    #[test]
    fn unrolled_variants_stay_structurally_sound() {
        for (name, dfg) in all() {
            let u = dfg.unroll(2);
            assert!(u.validate().is_ok(), "{name}(u)");
            assert!(u.is_connected(), "{name}(u)");
            assert_eq!(u.num_memory_ops(), 2 * dfg.num_memory_ops(), "{name}(u)");
        }
    }

    #[test]
    fn suite_statistics_are_printable() {
        for (_, dfg) in all() {
            let s = dfg.stats();
            assert!(s.max_fanout >= 1);
            assert!(s.mean_fanout >= 1.0);
            assert!(!format!("{s}").is_empty());
        }
    }

    #[test]
    fn builder_induction_is_cheap_recurrence() {
        let mut k = KernelBuilder::new("t");
        let i = k.induction();
        let _ = k.loop_guard(i);
        let dfg = k.build();
        assert_eq!(dfg.rec_mii(), 1);
    }
}
