//! Minimum-initiation-interval analysis and scheduling bounds.
//!
//! `MII = max(ResMII, RecMII)` following Rau's iterative modulo scheduling:
//! the resource bound counts operation slots per II cycles, the recurrence
//! bound comes from loop-carried dependency cycles.

use crate::{Dfg, NodeId};
use rewire_arch::Cgra;

impl Dfg {
    /// Resource-constrained minimum II on `cgra`, or `None` if some
    /// operation class has zero capacity (the DFG can never map).
    ///
    /// Accounts for both total ALU slots and memory-capable ALU slots, the
    /// two capacity classes of the paper's architectures.
    ///
    /// # Examples
    ///
    /// ```
    /// use rewire_arch::presets;
    /// use rewire_dfg::kernels;
    /// let dfg = kernels::gesummv();
    /// let mii = dfg.res_mii(&presets::paper_4x4_r4()).unwrap();
    /// assert!(mii >= 1);
    /// ```
    pub fn res_mii(&self, cgra: &Cgra) -> Option<u32> {
        if self.num_nodes() == 0 {
            return Some(1);
        }
        let total_pes = cgra.num_pes();
        let mem_pes = cgra.memory_pes().count();
        let mem_ops = self.num_memory_ops();
        if mem_ops > 0 && mem_pes == 0 {
            return None;
        }
        let all = self.num_nodes().div_ceil(total_pes) as u32;
        let mem = if mem_ops > 0 {
            mem_ops.div_ceil(mem_pes) as u32
        } else {
            0
        };
        Some(all.max(mem).max(1))
    }

    /// Recurrence-constrained minimum II.
    ///
    /// The smallest `II ≥ 1` for which the dependence constraint system
    /// `t_dst ≥ t_src + 1 − II·distance` admits a solution, i.e. the graph
    /// with edge weights `1 − II·distance` has no positive-weight cycle
    /// (checked with Bellman–Ford). A DFG without loop-carried edges has
    /// `RecMII = 1`.
    pub fn rec_mii(&self) -> u32 {
        if self.edges().all(|e| e.distance() == 0) {
            return 1;
        }
        // RecMII is bounded by the longest simple cycle latency, itself
        // bounded by the node count (unit latencies).
        let upper = self.num_nodes() as u32 + 1;
        for ii in 1..=upper {
            if !self.has_positive_cycle(ii) {
                return ii;
            }
        }
        upper
    }

    /// `max(ResMII, RecMII)`, or `None` if the DFG can never map on `cgra`.
    pub fn mii(&self, cgra: &Cgra) -> Option<u32> {
        Some(self.res_mii(cgra)?.max(self.rec_mii()))
    }

    /// Bellman–Ford positive-cycle detection with weights `1 − II·dist`.
    fn has_positive_cycle(&self, ii: u32) -> bool {
        let n = self.num_nodes();
        // Longest-path relaxations from a virtual source connected to all
        // nodes with weight 0.
        let mut dist = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for e in self.edges() {
                let w = 1i64 - ii as i64 * e.distance() as i64;
                let cand = dist[e.src().index()] + w;
                if cand > dist[e.dst().index()] {
                    dist[e.dst().index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        // One more pass: any further relaxation implies a positive cycle.
        for e in self.edges() {
            let w = 1i64 - ii as i64 * e.distance() as i64;
            if dist[e.src().index()] + w > dist[e.dst().index()] {
                return true;
            }
        }
        false
    }

    /// As-soon-as-possible schedule times over intra-iteration edges
    /// (sources at time 0, each edge adds one cycle).
    pub fn asap_times(&self) -> Vec<u32> {
        let order = self.topo_order();
        let mut t = vec![0u32; self.num_nodes()];
        for v in order {
            for e in self.out_edges(v) {
                if e.distance() == 0 {
                    t[e.dst().index()] = t[e.dst().index()].max(t[v.index()] + 1);
                }
            }
        }
        t
    }

    /// As-late-as-possible schedule times over intra-iteration edges, with
    /// sinks pinned to the critical-path depth.
    pub fn alap_times(&self) -> Vec<u32> {
        let depth = self.longest_path();
        let order = self.topo_order();
        let mut t = vec![depth; self.num_nodes()];
        for &v in order.iter().rev() {
            for e in self.out_edges(v) {
                if e.distance() == 0 {
                    t[v.index()] = t[v.index()].min(t[e.dst().index()].saturating_sub(1));
                }
            }
        }
        t
    }

    /// Scheduling slack (`alap − asap`) per node; 0 means critical-path.
    pub fn slack(&self) -> Vec<u32> {
        self.asap_times()
            .into_iter()
            .zip(self.alap_times())
            .map(|(a, l)| l.saturating_sub(a))
            .collect()
    }

    /// The maximum ASAP-cycle spread between two node sets — Rewire's
    /// propagation-round heuristic input ("maximum cycle difference between
    /// Parents(U) and Children(U)").
    pub fn max_cycle_spread(&self, a: &[NodeId], b: &[NodeId]) -> u32 {
        let t = self.asap_times();
        let hi = |s: &[NodeId]| s.iter().map(|v| t[v.index()]).max().unwrap_or(0);
        let lo = |s: &[NodeId]| s.iter().map(|v| t[v.index()]).min().unwrap_or(0);
        hi(a).abs_diff(lo(b)).max(hi(b).abs_diff(lo(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, OpKind};

    #[test]
    fn chain_rec_mii_is_one() {
        let mut g = Dfg::new("chain");
        let a = g.add_node("a", OpKind::Load);
        let b = g.add_node("b", OpKind::Add);
        g.add_edge(a, b, 0).unwrap();
        assert_eq!(g.rec_mii(), 1);
    }

    #[test]
    fn accumulator_rec_mii_is_cycle_latency_over_distance() {
        // phi -> add -> phi with distance 1: two unit-latency ops per
        // iteration of the recurrence => RecMII = 2.
        let mut g = Dfg::new("acc");
        let phi = g.add_node("phi", OpKind::Phi);
        let add = g.add_node("add", OpKind::Add);
        g.add_edge(phi, add, 0).unwrap();
        g.add_edge(add, phi, 1).unwrap();
        assert_eq!(g.rec_mii(), 2);
    }

    #[test]
    fn distance_two_halves_rec_mii() {
        // Same 2-op cycle but the value is consumed two iterations later:
        // RecMII = ceil(2/2) = 1.
        let mut g = Dfg::new("acc2");
        let phi = g.add_node("phi", OpKind::Phi);
        let add = g.add_node("add", OpKind::Add);
        g.add_edge(phi, add, 0).unwrap();
        g.add_edge(add, phi, 2).unwrap();
        assert_eq!(g.rec_mii(), 1);
    }

    #[test]
    fn long_recurrence() {
        // 4-op cycle with distance 1 => RecMII = 4.
        let mut g = Dfg::new("r4");
        let n: Vec<_> = (0..4)
            .map(|i| g.add_node(format!("n{i}"), OpKind::Add))
            .collect();
        g.add_edge(n[0], n[1], 0).unwrap();
        g.add_edge(n[1], n[2], 0).unwrap();
        g.add_edge(n[2], n[3], 0).unwrap();
        g.add_edge(n[3], n[0], 1).unwrap();
        assert_eq!(g.rec_mii(), 4);
    }

    #[test]
    fn res_mii_counts_memory_pressure() {
        let cgra = presets::paper_4x4_r4(); // 16 PEs, 4 memory PEs
        let mut g = Dfg::new("mem-heavy");
        let mut prev = None;
        for i in 0..9 {
            let ld = g.add_node(format!("ld{i}"), OpKind::Load);
            if let Some(p) = prev {
                g.add_edge(p, ld, 0).unwrap();
            }
            prev = Some(ld);
        }
        // 9 memory ops on 4 memory PEs => ResMII = ceil(9/4) = 3.
        assert_eq!(g.res_mii(&cgra), Some(3));
    }

    #[test]
    fn res_mii_none_when_no_memory_pes() {
        let cgra = rewire_arch::CgraBuilder::new(2, 2).build().unwrap();
        let mut g = Dfg::new("needs-mem");
        g.add_node("ld", OpKind::Load);
        assert_eq!(g.res_mii(&cgra), None);
        assert_eq!(g.mii(&cgra), None);
    }

    #[test]
    fn mii_is_max_of_both_bounds() {
        let cgra = presets::paper_4x4_r4();
        let mut g = Dfg::new("m");
        let phi = g.add_node("phi", OpKind::Phi);
        let a = g.add_node("a", OpKind::Add);
        let b = g.add_node("b", OpKind::Mul);
        g.add_edge(phi, a, 0).unwrap();
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, phi, 1).unwrap();
        assert_eq!(g.rec_mii(), 3);
        assert_eq!(g.res_mii(&cgra), Some(1));
        assert_eq!(g.mii(&cgra), Some(3));
    }

    #[test]
    fn asap_alap_and_slack() {
        let mut g = Dfg::new("d");
        let a = g.add_node("a", OpKind::Load);
        let b = g.add_node("b", OpKind::Add);
        let c = g.add_node("c", OpKind::Mul);
        let d = g.add_node("d", OpKind::Store);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, d, 0).unwrap();
        g.add_edge(a, c, 0).unwrap();
        g.add_edge(c, d, 0).unwrap();
        let asap = g.asap_times();
        assert_eq!(asap, vec![0, 1, 1, 2]);
        let alap = g.alap_times();
        assert_eq!(alap, vec![0, 1, 1, 2]);
        assert!(g.slack().iter().all(|&s| s == 0));
    }

    #[test]
    fn slack_of_short_branch() {
        let mut g = Dfg::new("d");
        let a = g.add_node("a", OpKind::Load);
        let b = g.add_node("b", OpKind::Add);
        let c = g.add_node("c", OpKind::Mul);
        let d = g.add_node("d", OpKind::Store);
        // a -> b -> c -> d (critical) plus a -> d (slack 2 on nothing; `a`
        // and `d` stay critical, the short edge itself is slack).
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, c, 0).unwrap();
        g.add_edge(c, d, 0).unwrap();
        g.add_edge(a, d, 0).unwrap();
        assert_eq!(g.slack(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn cycle_spread() {
        let mut g = Dfg::new("d");
        let a = g.add_node("a", OpKind::Load);
        let b = g.add_node("b", OpKind::Add);
        let c = g.add_node("c", OpKind::Store);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, c, 0).unwrap();
        assert_eq!(g.max_cycle_spread(&[a], &[c]), 2);
        assert_eq!(g.max_cycle_spread(&[a], &[a]), 0);
    }
}
