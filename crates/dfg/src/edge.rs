//! DFG edges.

use crate::NodeId;
use std::fmt;

/// Identifier of an edge within a [`Dfg`](crate::Dfg).
///
/// Dense indices in `0..dfg.num_edges()`, assigned in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an `EdgeId` from a raw dense index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for EdgeId {
    fn from(index: u32) -> Self {
        Self::new(index)
    }
}

/// A data dependency `src → dst` consumed `distance` iterations later.
///
/// Distance 0 is an ordinary intra-iteration dependency. Distance `d ≥ 1`
/// is loop-carried: with initiation interval `II`, the value produced at
/// schedule time `t_src` must reach the consumer at `t_dst + d·II`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DfgEdge {
    id: EdgeId,
    src: NodeId,
    dst: NodeId,
    distance: u32,
}

impl DfgEdge {
    pub(crate) fn new(id: EdgeId, src: NodeId, dst: NodeId, distance: u32) -> Self {
        Self {
            id,
            src,
            dst,
            distance,
        }
    }

    /// Dense identifier of this edge.
    pub fn id(&self) -> EdgeId {
        self.id
    }

    /// The producing node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The consuming node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Iteration distance (0 = intra-iteration).
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Whether this is a loop-carried dependency.
    pub fn is_loop_carried(&self) -> bool {
        self.distance > 0
    }
}

impl fmt::Display for DfgEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.distance == 0 {
            write!(f, "{}: {}→{}", self.id, self.src, self.dst)
        } else {
            write!(
                f,
                "{}: {}→{} [d={}]",
                self.id, self.src, self.dst, self.distance
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_accessors() {
        let e = DfgEdge::new(EdgeId::new(0), NodeId::new(1), NodeId::new(2), 1);
        assert_eq!(e.src(), NodeId::new(1));
        assert_eq!(e.dst(), NodeId::new(2));
        assert!(e.is_loop_carried());
        assert_eq!(format!("{e}"), "e0: n1→n2 [d=1]");
    }

    #[test]
    fn intra_edge_display_omits_distance() {
        let e = DfgEdge::new(EdgeId::new(3), NodeId::new(0), NodeId::new(1), 0);
        assert!(!e.is_loop_carried());
        assert_eq!(format!("{e}"), "e3: n0→n1");
    }
}
