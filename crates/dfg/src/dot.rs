//! Graphviz DOT export.

use crate::Dfg;
use std::fmt::Write as _;

impl Dfg {
    /// Renders the DFG in Graphviz DOT syntax.
    ///
    /// Memory operations are drawn as boxes, loop-carried edges as dashed
    /// arrows labelled with their distance.
    ///
    /// # Examples
    ///
    /// ```
    /// use rewire_dfg::kernels;
    /// let dot = kernels::atax().to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("->"));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=TB;");
        for node in self.nodes() {
            let shape = if node.op().is_memory() {
                "box"
            } else {
                "ellipse"
            };
            let _ = writeln!(
                out,
                "  {} [label=\"{}\\n{}\", shape={shape}];",
                node.id(),
                node.name(),
                node.op()
            );
        }
        for edge in self.edges() {
            if edge.is_loop_carried() {
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed, label=\"{}\"];",
                    edge.src(),
                    edge.dst(),
                    edge.distance()
                );
            } else {
                let _ = writeln!(out, "  {} -> {};", edge.src(), edge.dst());
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::OpKind;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut g = Dfg::new("t");
        let a = g.add_node("a", OpKind::Load);
        let b = g.add_node("b", OpKind::Add);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 1).unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("n0 ["));
        assert!(dot.contains("n1 ["));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("shape=box")); // the load
        assert!(dot.ends_with("}\n"));
    }
}
