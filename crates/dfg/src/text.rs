//! A minimal plain-text DFG interchange format.
//!
//! ```text
//! dfg gesummv
//! node ld_a ld
//! node mul0 mul
//! edge ld_a mul0
//! edge mul0 ld_a 1   # loop-carried, distance 1
//! ```
//!
//! Lines starting with `#` and blank lines are ignored; a trailing
//! `# comment` on any line is stripped.

use crate::{Dfg, GraphError, NodeId};
use rewire_arch::OpKind;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`Dfg::from_text`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ParseDfgError {
    /// The first significant line was not `dfg <name>`.
    MissingHeader,
    /// A line did not match `node …` / `edge …`.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown operation mnemonic.
    UnknownOp {
        /// 1-based line number.
        line: usize,
        /// The mnemonic that failed to parse.
        op: String,
    },
    /// An edge referenced a node name that was never declared.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The unknown name.
        name: String,
    },
    /// A node name was declared twice.
    DuplicateNode {
        /// 1-based line number.
        line: usize,
        /// The duplicated name.
        name: String,
    },
    /// The distance field was not a non-negative integer.
    BadDistance {
        /// 1-based line number.
        line: usize,
    },
    /// The resulting graph violated a structural invariant.
    Graph(GraphError),
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDfgError::MissingHeader => f.write_str("expected `dfg <name>` header"),
            ParseDfgError::BadLine { line } => write!(f, "line {line}: unrecognised directive"),
            ParseDfgError::UnknownOp { line, op } => {
                write!(f, "line {line}: unknown operation `{op}`")
            }
            ParseDfgError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node `{name}`")
            }
            ParseDfgError::DuplicateNode { line, name } => {
                write!(f, "line {line}: duplicate node `{name}`")
            }
            ParseDfgError::BadDistance { line } => {
                write!(f, "line {line}: distance must be a non-negative integer")
            }
            ParseDfgError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseDfgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseDfgError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseDfgError {
    fn from(e: GraphError) -> Self {
        ParseDfgError::Graph(e)
    }
}

fn op_from_mnemonic(s: &str) -> Option<OpKind> {
    OpKind::ALL.into_iter().find(|op| op.mnemonic() == s)
}

impl Dfg {
    /// Serialises the DFG to the plain-text format, parsable by
    /// [`Dfg::from_text`].
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "dfg {}", self.name());
        for n in self.nodes() {
            let _ = writeln!(out, "node {} {}", n.name(), n.op());
        }
        for e in self.edges() {
            let src = self.node(e.src()).name();
            let dst = self.node(e.dst()).name();
            if e.distance() == 0 {
                let _ = writeln!(out, "edge {src} {dst}");
            } else {
                let _ = writeln!(out, "edge {src} {dst} {}", e.distance());
            }
        }
        out
    }

    /// Parses a DFG from the plain-text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDfgError`] describing the first offending line, or a
    /// wrapped [`GraphError`] if the parsed graph is structurally invalid
    /// (e.g. an intra-iteration cycle).
    pub fn from_text(input: &str) -> Result<Dfg, ParseDfgError> {
        let mut dfg: Option<Dfg> = None;
        let mut names: HashMap<String, NodeId> = HashMap::new();
        for (idx, raw) in input.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().expect("non-empty line has a token");
            match (directive, &mut dfg) {
                ("dfg", None) => {
                    let name = parts.next().ok_or(ParseDfgError::MissingHeader)?;
                    dfg = Some(Dfg::new(name));
                }
                ("dfg", Some(_)) => return Err(ParseDfgError::BadLine { line: line_no }),
                (_, None) => return Err(ParseDfgError::MissingHeader),
                ("node", Some(g)) => {
                    let (name, op) = match (parts.next(), parts.next()) {
                        (Some(n), Some(o)) => (n, o),
                        _ => return Err(ParseDfgError::BadLine { line: line_no }),
                    };
                    let op = op_from_mnemonic(op).ok_or_else(|| ParseDfgError::UnknownOp {
                        line: line_no,
                        op: op.to_string(),
                    })?;
                    if names.contains_key(name) {
                        return Err(ParseDfgError::DuplicateNode {
                            line: line_no,
                            name: name.to_string(),
                        });
                    }
                    let id = g.add_node(name, op);
                    names.insert(name.to_string(), id);
                }
                ("edge", Some(g)) => {
                    let (src, dst) = match (parts.next(), parts.next()) {
                        (Some(s), Some(d)) => (s, d),
                        _ => return Err(ParseDfgError::BadLine { line: line_no }),
                    };
                    let distance = match parts.next() {
                        None => 0,
                        Some(d) => d
                            .parse::<u32>()
                            .map_err(|_| ParseDfgError::BadDistance { line: line_no })?,
                    };
                    let lookup = |name: &str| {
                        names
                            .get(name)
                            .copied()
                            .ok_or_else(|| ParseDfgError::UnknownNode {
                                line: line_no,
                                name: name.to_string(),
                            })
                    };
                    let (s, d) = (lookup(src)?, lookup(dst)?);
                    g.add_edge(s, d, distance)?;
                }
                _ => return Err(ParseDfgError::BadLine { line: line_no }),
            }
        }
        let dfg = dfg.ok_or(ParseDfgError::MissingHeader)?;
        dfg.validate()?;
        Ok(dfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn round_trip_all_kernels() {
        for (name, dfg) in kernels::all() {
            let text = dfg.to_text();
            let parsed = Dfg::from_text(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(parsed.num_nodes(), dfg.num_nodes(), "{name}");
            assert_eq!(parsed.num_edges(), dfg.num_edges(), "{name}");
            assert_eq!(parsed.name(), dfg.name(), "{name}");
            for (a, b) in parsed.edges().zip(dfg.edges()) {
                assert_eq!(
                    (a.src(), a.dst(), a.distance()),
                    (b.src(), b.dst(), b.distance())
                );
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\n\ndfg t\nnode a ld # the load\nnode b add\nedge a b\n";
        let g = Dfg::from_text(text).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_header() {
        assert_eq!(
            Dfg::from_text("node a add").unwrap_err(),
            ParseDfgError::MissingHeader
        );
        assert_eq!(
            Dfg::from_text("").unwrap_err(),
            ParseDfgError::MissingHeader
        );
    }

    #[test]
    fn unknown_op() {
        let err = Dfg::from_text("dfg t\nnode a frobnicate").unwrap_err();
        assert!(matches!(err, ParseDfgError::UnknownOp { line: 2, .. }));
    }

    #[test]
    fn unknown_node_in_edge() {
        let err = Dfg::from_text("dfg t\nnode a add\nedge a ghost").unwrap_err();
        assert!(matches!(err, ParseDfgError::UnknownNode { line: 3, .. }));
    }

    #[test]
    fn duplicate_node() {
        let err = Dfg::from_text("dfg t\nnode a add\nnode a mul").unwrap_err();
        assert!(matches!(err, ParseDfgError::DuplicateNode { line: 3, .. }));
    }

    #[test]
    fn bad_distance() {
        let err = Dfg::from_text("dfg t\nnode a add\nnode b add\nedge a b minusone").unwrap_err();
        assert!(matches!(err, ParseDfgError::BadDistance { line: 4 }));
    }

    #[test]
    fn intra_cycle_rejected_at_parse() {
        let err = Dfg::from_text("dfg t\nnode a add\nnode b add\nedge a b\nedge b a").unwrap_err();
        assert_eq!(err, ParseDfgError::Graph(GraphError::IntraIterationCycle));
    }
}
