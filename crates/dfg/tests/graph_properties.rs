//! Property-based tests over random DFGs: structural invariants of the
//! graph algorithms and transforms.

use proptest::prelude::*;
use rewire_dfg::generate::{random_dfg, RandomDfgParams};
use rewire_dfg::Dfg;

fn params(nodes: usize, recurrences: usize) -> RandomDfgParams {
    RandomDfgParams {
        nodes,
        recurrences,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Topological order is a permutation of the nodes respecting every
    /// intra-iteration edge.
    #[test]
    fn topo_order_is_a_valid_permutation(seed in 0u64..100_000, n in 2usize..40) {
        let g = random_dfg(&params(n, 1), seed);
        let order = g.topo_order();
        prop_assert_eq!(order.len(), g.num_nodes());
        let pos = |v: rewire_dfg::NodeId| order.iter().position(|&x| x == v).unwrap();
        for e in g.edges() {
            if e.distance() == 0 {
                prop_assert!(pos(e.src()) < pos(e.dst()));
            }
        }
    }

    /// ASAP times satisfy all intra edges with exactly-one-cycle latency
    /// lower bounds, and ALAP never precedes ASAP.
    #[test]
    fn asap_alap_are_consistent(seed in 0u64..100_000, n in 2usize..40) {
        let g = random_dfg(&params(n, 0), seed);
        let asap = g.asap_times();
        let alap = g.alap_times();
        for e in g.edges() {
            if e.distance() == 0 {
                prop_assert!(asap[e.dst().index()] > asap[e.src().index()]);
                prop_assert!(alap[e.dst().index()] > alap[e.src().index()]);
            }
        }
        for v in g.node_ids() {
            prop_assert!(alap[v.index()] >= asap[v.index()]);
        }
    }

    /// RecMII is monotone under unrolling: unroll-by-f multiplies the
    /// recurrence bound by exactly f (same cycles, f× latency, same
    /// distance structure after re-normalisation).
    #[test]
    fn unroll_scales_rec_mii(seed in 0u64..100_000, f in 1u32..4) {
        let g = random_dfg(&params(12, 1), seed);
        let rec = g.rec_mii();
        let u = g.unroll(f);
        prop_assert_eq!(u.rec_mii(), rec * f);
    }

    /// Text serialisation round-trips exactly.
    #[test]
    fn text_round_trip(seed in 0u64..100_000, n in 2usize..30) {
        let g = random_dfg(&params(n, 2), seed);
        let parsed = Dfg::from_text(&g.to_text()).unwrap();
        prop_assert_eq!(parsed.num_nodes(), g.num_nodes());
        prop_assert_eq!(parsed.num_edges(), g.num_edges());
        for (a, b) in parsed.edges().zip(g.edges()) {
            prop_assert_eq!((a.src(), a.dst(), a.distance()), (b.src(), b.dst(), b.distance()));
        }
        for (a, b) in parsed.nodes().zip(g.nodes()) {
            prop_assert_eq!(a.op(), b.op());
            prop_assert_eq!(a.name(), b.name());
        }
    }

    /// Hop distance is symmetric on undirected connectivity and zero only
    /// for self/overlapping sets.
    #[test]
    fn hop_distance_symmetry(seed in 0u64..100_000) {
        let g = random_dfg(&params(15, 1), seed);
        let ids: Vec<_> = g.node_ids().collect();
        let a = ids[3];
        let b = ids[10];
        let d_ab = g.hop_distance_to_set(a, &[b]);
        let d_ba = g.hop_distance_to_set(b, &[a]);
        prop_assert_eq!(d_ab, d_ba);
    }

    /// Recurrence back-edge distances are stratified: never out of bounds,
    /// and once `recurrences >= max_distance` every distance in
    /// `1..=max_distance` is present. Pins the distance distribution the
    /// fuzz harness relies on (the old independent draws could leave
    /// distance > 1 — and hence the router's deep RecMII paths — untested
    /// for arbitrarily many seeds).
    #[test]
    fn recurrence_distance_distribution(seed in 0u64..100_000, maxd in 1u32..6) {
        let p = RandomDfgParams {
            nodes: 12,
            recurrences: maxd as usize,
            max_distance: maxd,
            ..Default::default()
        };
        let g = random_dfg(&p, seed);
        let mut seen = vec![false; maxd as usize + 1];
        for e in g.edges() {
            if e.distance() > 0 {
                prop_assert!(e.distance() <= maxd);
                seen[e.distance() as usize] = true;
            }
        }
        for (d, hit) in seen.iter().enumerate().skip(1) {
            prop_assert!(hit, "distance {} missing with max_distance {}", d, maxd);
        }
    }

    /// The DOT export mentions every node and every edge arrow.
    #[test]
    fn dot_is_complete(seed in 0u64..100_000, n in 2usize..20) {
        let g = random_dfg(&params(n, 1), seed);
        let dot = g.to_dot();
        prop_assert_eq!(dot.matches(" -> ").count(), g.num_edges());
        for v in g.node_ids() {
            let tag = format!("{v} [");
            prop_assert!(dot.contains(&tag));
        }
    }
}
