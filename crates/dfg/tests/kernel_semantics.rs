//! Cross-checks of kernel structure against intended algorithm shapes.

use rewire_arch::OpKind;
use rewire_dfg::kernels;

#[test]
fn reduction_kernels_have_accumulator_cycles() {
    // Every kernel that reduces over the inner loop must contain a
    // phi-closed cycle with distance ≥ 1.
    for name in ["gesummv", "gemm", "syrk", "fir", "md-knn", "backprop"] {
        let g = kernels::by_name(name).unwrap();
        let has_acc = g
            .edges()
            .any(|e| e.is_loop_carried() && g.node(e.dst()).op() == OpKind::Phi);
        assert!(has_acc, "{name} lost its accumulator");
    }
}

#[test]
fn loads_always_have_address_producers() {
    for (name, g) in kernels::all() {
        for node in g.nodes() {
            if node.op() == OpKind::Load {
                assert!(
                    g.parents(node.id()).count() >= 1,
                    "{name}: {} has no address input",
                    node.name()
                );
            }
        }
    }
}

#[test]
fn stores_are_sinks_or_memory_carried() {
    // A store's only outgoing edges model memory-carried dependencies
    // (distance ≥ 1); no intra-iteration value flows out of a store.
    for (name, g) in kernels::all() {
        for node in g.nodes() {
            if node.op() == OpKind::Store {
                for e in g.out_edges(node.id()) {
                    assert!(
                        e.is_loop_carried(),
                        "{name}: {} feeds an intra-iteration edge",
                        node.name()
                    );
                }
            }
        }
    }
}

#[test]
fn guards_compare_induction_variables() {
    // Every kernel has at least one loop-exit compare fed by an induction
    // variable (an `Addr` self-loop node).
    for (name, g) in kernels::all() {
        let has_guard = g.nodes().any(|n| {
            n.op() == OpKind::Cmp
                && g.parents(n.id()).any(|p| {
                    g.node(p).op() == OpKind::Addr
                        && g.out_edges(p).any(|e| e.dst() == p && e.is_loop_carried())
                })
        });
        assert!(has_guard, "{name} has no induction-guard compare");
    }
}

#[test]
fn kernel_depth_is_plausible() {
    for (name, g) in kernels::all() {
        let depth = g.longest_path();
        assert!(
            (3..=20).contains(&depth),
            "{name}: depth {depth} outside the plausible inner-loop band"
        );
    }
}
