//! Greedy scenario shrinking: reduce a failing (DFG, fabric) pair to a
//! minimal reproducer while the oracle keeps failing.
//!
//! The shrinker is mapper-agnostic — it only needs a predicate "does this
//! candidate still fail?". Reductions are tried in a fixed, deterministic
//! order (drop node, drop edge, prune fan-out branches, reduce carry
//! distance, shrink fabric) and the first accepted candidate restarts the
//! pass, so the same failing scenario always shrinks along the same trace
//! — a property the corpus replay test pins.

use rewire_arch::random::CgraSpec;
use rewire_dfg::{Dfg, EdgeId};

/// Outcome of a shrink run.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimal still-failing DFG.
    pub dfg: Dfg,
    /// The minimal still-failing fabric.
    pub spec: CgraSpec,
    /// Accepted reductions, in order — the shrink trace.
    pub steps: Vec<String>,
    /// Candidate evaluations spent (accepted + rejected).
    pub evaluations: u32,
}

/// Budgeted greedy shrink. `still_fails` must return `true` while the
/// failure reproduces; the final result is the smallest candidate for
/// which it did. `max_evaluations` bounds total predicate calls (each one
/// typically re-runs every mapper), keeping worst-case shrink time linear
/// in the budget.
///
/// The input scenario itself is assumed failing (the caller observed the
/// violation); it is returned unchanged if nothing smaller still fails.
pub fn shrink(
    dfg: &Dfg,
    spec: &CgraSpec,
    still_fails: &mut dyn FnMut(&Dfg, &CgraSpec) -> bool,
    max_evaluations: u32,
) -> ShrinkResult {
    let mut cur_dfg = dfg.clone();
    let mut cur_spec = spec.clone();
    let mut steps = Vec::new();
    let mut evaluations = 0u32;

    let mut try_candidate = |cand_dfg: &Dfg, cand_spec: &CgraSpec, evaluations: &mut u32| -> bool {
        if *evaluations >= max_evaluations {
            return false;
        }
        if cand_dfg.num_nodes() == 0 || cand_dfg.validate().is_err() || cand_spec.build().is_err() {
            return false;
        }
        *evaluations += 1;
        still_fails(cand_dfg, cand_spec)
    };

    // Fixpoint: keep sweeping all four reduction families until a whole
    // round accepts nothing (or the budget runs out).
    loop {
        let mut progressed = false;

        // 1. Drop nodes, ascending id; restart the scan on every
        //    acceptance (ids shift after a rebuild).
        'nodes: loop {
            for v in cur_dfg.node_ids() {
                let cand = cur_dfg.without_node(v);
                if try_candidate(&cand, &cur_spec, &mut evaluations) {
                    steps.push(format!("drop node {}", cur_dfg.node(v).name()));
                    cur_dfg = cand;
                    progressed = true;
                    continue 'nodes;
                }
            }
            break;
        }

        // 2. Drop edges, ascending id.
        'edges: loop {
            for e in 0..cur_dfg.num_edges() {
                let id = EdgeId::new(e as u32);
                let cand = cur_dfg.without_edge(id);
                if try_candidate(&cand, &cur_spec, &mut evaluations) {
                    let edge = cur_dfg.edge(id);
                    steps.push(format!(
                        "drop edge {}->{} d{}",
                        cur_dfg.node(edge.src()).name(),
                        cur_dfg.node(edge.dst()).name(),
                        edge.distance()
                    ));
                    cur_dfg = cand;
                    progressed = true;
                    continue 'edges;
                }
            }
            break;
        }

        // 2b. Prune fan-out branches in bulk: a hub with k >= 3 sinks is
        //     cut to its first two in one candidate. Route-tree failures
        //     are often non-monotone in the branch count (per-edge routing
        //     fails at k but also at the 2-sink core once the fabric has
        //     shrunk), so the bulk jump reaches minima the single-edge
        //     family plateaus before — and spends one evaluation where
        //     single drops would spend k.
        'branches: loop {
            for v in cur_dfg.node_ids() {
                let branches: Vec<EdgeId> = cur_dfg.out_edges(v).map(|e| e.id()).collect();
                if branches.len() < 3 {
                    continue;
                }
                let mut pruned: Vec<EdgeId> = branches[2..].to_vec();
                // Drop highest ids first so the survivors' ids stay valid
                // across the successive rebuilds.
                pruned.sort_by_key(|e| std::cmp::Reverse(e.index()));
                let mut cand = cur_dfg.clone();
                for &id in &pruned {
                    cand = cand.without_edge(id);
                }
                if try_candidate(&cand, &cur_spec, &mut evaluations) {
                    steps.push(format!(
                        "prune {} fan-out branches of {}",
                        pruned.len(),
                        cur_dfg.node(v).name()
                    ));
                    cur_dfg = cand;
                    progressed = true;
                    continue 'branches;
                }
            }
            break;
        }

        // 3. Reduce carry distances toward 1 (try the floor first, then a
        //    single decrement).
        for e in 0..cur_dfg.num_edges() {
            let id = EdgeId::new(e as u32);
            let d = cur_dfg.edge(id).distance();
            if d <= 1 {
                continue;
            }
            for target in [1, d - 1] {
                if target >= d {
                    continue;
                }
                let cand = cur_dfg.with_edge_distance(id, target);
                if try_candidate(&cand, &cur_spec, &mut evaluations) {
                    steps.push(format!("reduce distance of edge {e} from {d} to {target}"));
                    cur_dfg = cand;
                    progressed = true;
                    break;
                }
            }
        }

        // 4. Shrink the fabric.
        for (desc, cand_spec) in fabric_candidates(&cur_spec) {
            if try_candidate(&cur_dfg, &cand_spec, &mut evaluations) {
                steps.push(format!("fabric: {desc} ({cur_spec} -> {cand_spec})"));
                cur_spec = cand_spec;
                progressed = true;
            }
        }

        if !progressed || evaluations >= max_evaluations {
            break;
        }
    }

    ShrinkResult {
        dfg: cur_dfg,
        spec: cur_spec,
        steps,
        evaluations,
    }
}

/// Single-step fabric reductions, in deterministic order. Every candidate
/// satisfies the builder invariants (memory columns clamped to the new
/// width; banks dropped with the last column).
fn fabric_candidates(spec: &CgraSpec) -> Vec<(&'static str, CgraSpec)> {
    let mut out = Vec::new();
    if spec.diagonals {
        let mut s = spec.clone();
        s.diagonals = false;
        out.push(("drop diagonals", s));
    }
    if spec.torus {
        let mut s = spec.clone();
        s.torus = false;
        out.push(("drop torus", s));
    }
    if spec.cut_row.is_some() {
        let mut s = spec.clone();
        s.cut_row = None;
        out.push(("reconnect the cut", s));
    }
    if spec.rows > 1 {
        let mut s = spec.clone();
        s.rows -= 1;
        out.push(("drop a row", s));
    }
    if spec.cols > 1 {
        let mut s = spec.clone();
        s.cols -= 1;
        s.memory_columns.retain(|&c| c < s.cols);
        if s.memory_columns.is_empty() {
            s.memory_banks = 0;
        }
        out.push(("drop a column", s));
    }
    if spec.regs_per_pe > 1 {
        let mut s = spec.clone();
        s.regs_per_pe -= 1;
        out.push(("drop a register", s));
    }
    if spec.memory_banks > 0 {
        let mut s = spec.clone();
        s.memory_banks = 0;
        s.memory_columns.clear();
        out.push(("drop memory", s));
    }
    out
}

/// Convenience: the shrink trace as one printable block.
pub fn render_trace(result: &ShrinkResult) -> String {
    let mut s = format!(
        "shrunk to {} nodes / {} edges on {} in {} evaluations\n",
        result.dfg.num_nodes(),
        result.dfg.num_edges(),
        result.spec,
        result.evaluations
    );
    for step in &result.steps {
        s.push_str("  - ");
        s.push_str(step);
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use rewire_arch::OpKind;

    fn has_mul(dfg: &Dfg) -> bool {
        dfg.nodes().any(|n| n.op() == OpKind::Mul)
    }

    #[test]
    fn shrinks_to_the_failing_core() {
        // Predicate: "fails whenever the DFG contains a Mul". The minimal
        // reproducer is a single Mul node on the smallest fabric.
        let s = Scenario::generate(3);
        let mut dfg = s.dfg.clone();
        // Ensure at least one Mul exists regardless of the seed's draw.
        dfg.add_node("the_mul", OpKind::Mul);
        let mut pred = |d: &Dfg, _: &CgraSpec| has_mul(d);
        assert!(pred(&dfg, &s.spec), "scenario must start failing");
        let r = shrink(&dfg, &s.spec, &mut pred, 10_000);
        assert_eq!(r.num_mul(), 1, "exactly the failing core survives");
        assert_eq!(r.dfg.num_nodes(), 1);
        assert_eq!(r.dfg.num_edges(), 0);
        assert_eq!((r.spec.rows, r.spec.cols), (1, 1));
        assert_eq!(r.spec.regs_per_pe, 1);
        assert!(!r.steps.is_empty());
    }

    impl ShrinkResult {
        fn num_mul(&self) -> usize {
            self.dfg.nodes().filter(|n| n.op() == OpKind::Mul).count()
        }
    }

    #[test]
    fn shrink_trace_is_deterministic() {
        let s = Scenario::generate(9);
        let mut dfg = s.dfg.clone();
        dfg.add_node("the_mul", OpKind::Mul);
        let run = || {
            let mut pred = |d: &Dfg, _: &CgraSpec| has_mul(d);
            shrink(&dfg, &s.spec, &mut pred, 10_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.dfg.to_text(), b.dfg.to_text());
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn per_branch_pruning_jumps_over_greedy_plateaus() {
        use rewire_dfg::NodeId;
        // A 6-sink hub under a non-monotone predicate: the failure
        // reproduces at fan-out 6 and again at fan-out <= 2, but not in
        // between — exactly the shape of "per-edge routing fails on the
        // full tree and on its 2-branch core". Single-edge drops are all
        // rejected (they land on fan-out 5); only the bulk branch prune
        // reaches the core.
        let mut dfg = Dfg::new("hub");
        let p = dfg.add_node("p", OpKind::Add);
        for i in 0..6 {
            let s = dfg.add_node(format!("s{i}"), OpKind::Add);
            dfg.add_edge(p, s, 0).unwrap();
        }
        let spec = Scenario::generate(3).spec;
        let max_out = |d: &Dfg| {
            (0..d.num_nodes() as u32)
                .map(|n| d.out_edges(NodeId::new(n)).len())
                .max()
                .unwrap_or(0)
        };
        let mut pred = |d: &Dfg, _: &CgraSpec| {
            let k = max_out(d);
            k == 6 || (1..=2).contains(&k)
        };
        assert!(pred(&dfg, &spec), "hub must start failing");
        let r = shrink(&dfg, &spec, &mut pred, 10_000);
        assert!(
            r.steps.iter().any(|s| s.starts_with("prune ")),
            "bulk branch prune must fire, got {:?}",
            r.steps
        );
        assert!(max_out(&r.dfg) <= 2, "shrunk to the fan-out core");
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let s = Scenario::generate(3);
        let mut calls = 0u32;
        let mut pred = |_: &Dfg, _: &CgraSpec| {
            calls += 1;
            true // everything "fails": worst case for the budget
        };
        let r = shrink(&s.dfg, &s.spec, &mut pred, 25);
        assert!(r.evaluations <= 25);
        assert_eq!(r.evaluations, calls);
    }

    #[test]
    fn nothing_smaller_fails_returns_input() {
        let s = Scenario::generate(5);
        let original = s.dfg.to_text();
        let mut pred = |_: &Dfg, _: &CgraSpec| false; // only the input fails
        let r = shrink(&s.dfg, &s.spec, &mut pred, 10_000);
        assert_eq!(r.dfg.to_text(), original);
        assert_eq!(&r.spec, &s.spec);
        assert!(r.steps.is_empty());
    }

    #[test]
    fn fabric_candidates_all_build() {
        for seed in 0..32 {
            let s = Scenario::generate(seed);
            for (desc, cand) in fabric_candidates(&s.spec) {
                assert!(cand.build().is_ok(), "seed {seed}: {desc} -> {cand}");
            }
        }
    }

    #[test]
    fn render_trace_lists_steps() {
        let s = Scenario::generate(3);
        let mut dfg = s.dfg.clone();
        dfg.add_node("the_mul", OpKind::Mul);
        let mut pred = |d: &Dfg, _: &CgraSpec| has_mul(d);
        let r = shrink(&dfg, &s.spec, &mut pred, 10_000);
        let t = render_trace(&r);
        assert!(t.contains("shrunk to 1 nodes"));
        assert!(t.contains("drop node"));
    }
}
