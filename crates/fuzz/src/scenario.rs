//! Scenario generation: one fuzz seed ⇒ one (DFG, fabric) pair.
//!
//! A scenario is fully determined by its seed: the seed is split (via
//! SplitMix64, the same mix the engine uses for per-worker seeds) into
//! independent streams for the DFG-shape draw, the DFG itself, the fabric,
//! and the mapper RNGs, so regenerating any part never perturbs the
//! others.

use rewire_arch::random::{random_cgra_spec, CgraSpec, RandomCgraParams};
use rewire_arch::Cgra;
use rewire_dfg::generate::{random_dfg, RandomDfgParams};
use rewire_dfg::Dfg;

/// SplitMix64: decorrelates a base seed and a salt into an independent
/// stream seed. Matches the finalizer used by `rewire_mappers::engine`'s
/// `worker_seed`, reused here so one fuzz seed can deterministically spawn
/// many sub-streams.
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One generated fuzz scenario: a random kernel on a random fabric.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The fuzz seed that produced it.
    pub seed: u64,
    /// The kernel.
    pub dfg: Dfg,
    /// The fabric, as a re-buildable spec (what artifacts persist).
    pub spec: CgraSpec,
    /// The built fabric.
    pub cgra: Cgra,
}

impl Scenario {
    /// Generates the scenario for `seed`. Deterministic: same seed ⇒
    /// byte-identical DFG text and fabric spec.
    ///
    /// The DFG-shape knobs themselves are drawn from the seed, so the
    /// population covers sizes 4–14 nodes (small enough for the
    /// exhaustive oracle to participate on a meaningful fraction),
    /// recurrence counts 0–3, depths 1–3, carry distances up to 3,
    /// memory fractions 0–0.35 and a *promoted* fan-out-skew knob: a base
    /// skew of 1–3 (salt 16) escalated 2.5× on a quarter of the seeds
    /// (salt 17, its own stream so the older draws stay put), so the
    /// population reliably contains the fan-out-hub kernels the
    /// Steiner-tree router exists for. Fabrics span 2×2 up to 5×5 with
    /// 1–4 registers, occasional torus/diagonal links and occasional
    /// memory-free grids (those make memory kernels *infeasible* — MII
    /// undefined — which is a scenario class of its own: every mapper
    /// must give up cleanly and agree).
    pub fn generate(seed: u64) -> Self {
        // Independent draw streams.
        let shape = mix(seed, 1);
        let dfg_seed = mix(seed, 2);
        let arch_seed = mix(seed, 3);

        let pick = |salt: u64, n: u64| mix(shape, salt) % n;
        let dfg_params = RandomDfgParams {
            nodes: 4 + pick(10, 11) as usize,                    // 4..=14
            second_operand_prob: 0.3 + pick(11, 6) as f64 * 0.1, // 0.3..=0.8
            memory_fraction: pick(12, 8) as f64 * 0.05,          // 0.0..=0.35
            recurrences: pick(13, 4) as usize,                   // 0..=3
            max_distance: 1 + pick(14, 3) as u32,                // 1..=3
            recurrence_depth: 1 + pick(15, 3) as usize,          // 1..=3
            // Promoted knob: base skew 1..=3, with a heavy-fan-out tail on
            // ~25% of seeds (2.5x escalation, up to 7.5). The escalation
            // draw uses a fresh salt so seeds keep their other parameters.
            fanout_skew: [1.0, 1.0, 2.0, 3.0][pick(16, 4) as usize]
                * [1.0, 1.0, 1.0, 2.5][pick(17, 4) as usize],
        };
        let arch_params = RandomCgraParams {
            rows: (2, 5),
            cols: (2, 5),
            regs_per_pe: (1, 4),
            memory_prob: 0.85,
            memory_banks: (1, 4),
            max_memory_columns: 2,
            torus_prob: 0.15,
            diagonal_prob: 0.15,
            // Stays 0.0: the checked-in corpus pins the seed -> spec
            // correspondence, and a zero probability consumes no RNG draw.
            cut_prob: 0.0,
        };

        let dfg = random_dfg(&dfg_params, dfg_seed);
        let spec = random_cgra_spec(&arch_params, arch_seed);
        let cgra = spec.build().expect("random specs always build");
        Self {
            seed,
            dfg,
            spec,
            cgra,
        }
    }

    /// Rebuilds a scenario around an explicit DFG and fabric spec (the
    /// shrinker's candidates, artifact replay).
    ///
    /// # Panics
    ///
    /// Panics if `spec` does not build — shrink candidates and persisted
    /// artifacts are produced from specs that built before.
    pub fn from_parts(seed: u64, dfg: Dfg, spec: CgraSpec) -> Self {
        let cgra = spec.build().expect("spec must build");
        Self {
            seed,
            dfg,
            spec,
            cgra,
        }
    }

    /// One-line structural summary, stable across reruns (no timing).
    pub fn summary(&self) -> String {
        let mii = self
            .dfg
            .mii(&self.cgra)
            .map_or("-".to_string(), |m| m.to_string());
        format!(
            "{}n/{}e mem={} mii={} on {}",
            self.dfg.num_nodes(),
            self.dfg.num_edges(),
            self.dfg.num_memory_ops(),
            mii,
            self.spec
        )
    }

    /// The base RNG seed handed to the mappers for this scenario.
    pub fn mapper_seed(&self) -> u64 {
        mix(self.seed, 4)
    }

    /// The input seed for the semantic (golden-model) check.
    pub fn input_seed(&self) -> u64 {
        mix(self.seed, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        let a = Scenario::generate(17);
        let b = Scenario::generate(17);
        assert_eq!(a.dfg.to_text(), b.dfg.to_text());
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn seeds_diversify_both_sides() {
        let dfgs: std::collections::HashSet<String> = (0..24)
            .map(|s| Scenario::generate(s).dfg.to_text())
            .collect();
        let specs: std::collections::HashSet<String> = (0..24)
            .map(|s| Scenario::generate(s).spec.to_string())
            .collect();
        assert!(dfgs.len() >= 20, "{} distinct DFGs", dfgs.len());
        assert!(specs.len() >= 8, "{} distinct fabrics", specs.len());
    }

    #[test]
    fn scenarios_are_structurally_sound() {
        for seed in 0..64 {
            let s = Scenario::generate(seed);
            assert!(s.dfg.validate().is_ok(), "seed {seed}");
            assert!(s.dfg.num_nodes() >= 4, "seed {seed}");
            assert!(s.cgra.num_pes() >= 4, "seed {seed}");
        }
    }

    #[test]
    fn population_covers_key_classes() {
        let mut exhaustive_eligible = 0;
        let mut infeasible = 0;
        let mut deep_distance = 0;
        let mut fanout_hub = 0;
        for seed in 0..128 {
            let s = Scenario::generate(seed);
            if s.dfg.num_nodes() <= 12 {
                exhaustive_eligible += 1;
            }
            if s.dfg.mii(&s.cgra).is_none() {
                infeasible += 1;
            }
            if s.dfg.edges().any(|e| e.distance() > 1) {
                deep_distance += 1;
            }
            let max_out = (0..s.dfg.num_nodes() as u32)
                .map(|n| s.dfg.out_edges(rewire_dfg::NodeId::new(n)).len())
                .max()
                .unwrap_or(0);
            if max_out >= 3 {
                fanout_hub += 1;
            }
        }
        assert!(
            exhaustive_eligible > 20,
            "{exhaustive_eligible} small scenarios"
        );
        assert!(infeasible > 0, "no infeasible scenario in 128 seeds");
        assert!(deep_distance > 20, "{deep_distance} deep-carry scenarios");
        // The promoted fan-out-skew knob must keep hub kernels (a node
        // with >= 3 sinks) a substantial scenario class.
        assert!(fanout_hub > 15, "{fanout_hub} fan-out-hub scenarios");
    }

    #[test]
    fn mix_decorrelates() {
        assert_ne!(mix(0, 1), mix(0, 2));
        assert_ne!(mix(1, 1), mix(2, 1));
        assert_eq!(mix(7, 3), mix(7, 3));
    }
}
