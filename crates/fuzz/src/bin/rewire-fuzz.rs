//! Differential fuzzing driver.
//!
//! Usage:
//! `rewire-fuzz [--seeds A..B] [--budget-ms N] [--exact-budget-ms N]
//!              [--jobs N] [--corpus DIR] [--metrics FILE] [--replay DIR]
//!              [--router tree|per-edge]`
//!
//! `--router tree|per-edge` (default tree) picks the fan-out routing mode
//! for the whole run, so CI can fuzz both arms of the Steiner-tree
//! differential.
//!
//! `--exact-budget-ms N` (default 0 = off) additionally runs the exact
//! SAT backend on every scenario with an N-millisecond per-II wall-clock
//! safety net, enabling the `exact_verdict` oracle layer: any heuristic
//! mapping at an II the SAT solver proved infeasible is a violation.
//!
//! Default mode fuzzes the seed range (default `0..256`): every seed is a
//! random DFG on a random fabric, mapped by all four mappers and checked
//! against the oracle stack. Failures are shrunk to minimal reproducers
//! and written to the corpus directory (default `fuzz/corpus`), and the
//! process exits nonzero.
//!
//! `--replay DIR` instead replays every `.dfg` artifact in DIR and checks
//! each against its recorded expectation (the CI regression mode).

use rewire_fuzz::{fuzz_range, replay, Artifact, CheckKind, FuzzConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    seeds: std::ops::Range<u64>,
    budget_ms: u64,
    exact_budget_ms: u64,
    jobs: usize,
    corpus: PathBuf,
    metrics: Option<String>,
    replay: Option<PathBuf>,
    fanout: rewire_mrrg::FanoutMode,
}

fn parse_seed_range(v: &str) -> std::ops::Range<u64> {
    let (lo, hi) = v
        .split_once("..")
        .unwrap_or_else(|| panic!("--seeds needs the form A..B, got `{v}`"));
    let lo: u64 = lo.parse().unwrap_or_else(|_| panic!("bad seed `{lo}`"));
    let hi: u64 = hi.parse().unwrap_or_else(|_| panic!("bad seed `{hi}`"));
    assert!(lo < hi, "--seeds range {v} is empty");
    lo..hi
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Args {
    let mut parsed = Args {
        seeds: 0..256,
        budget_ms: 200,
        exact_budget_ms: 0,
        jobs: 1,
        corpus: PathBuf::from("fuzz/corpus"),
        metrics: None,
        replay: None,
        fanout: rewire_mrrg::default_fanout_mode(),
    };
    fn parse_fanout(v: &str) -> rewire_mrrg::FanoutMode {
        match v {
            "tree" => rewire_mrrg::FanoutMode::Tree,
            "per-edge" => rewire_mrrg::FanoutMode::PerEdge,
            other => panic!("--router needs tree or per-edge, got `{other}`"),
        }
    }
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--seeds" {
            parsed.seeds = parse_seed_range(&args.next().expect("--seeds needs A..B"));
        } else if let Some(v) = arg.strip_prefix("--seeds=") {
            parsed.seeds = parse_seed_range(v);
        } else if arg == "--budget-ms" {
            parsed.budget_ms = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--budget-ms needs a positive integer");
        } else if let Some(v) = arg.strip_prefix("--budget-ms=") {
            parsed.budget_ms = v.parse().expect("--budget-ms needs a positive integer");
        } else if arg == "--exact-budget-ms" {
            parsed.exact_budget_ms = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--exact-budget-ms needs an integer");
        } else if let Some(v) = arg.strip_prefix("--exact-budget-ms=") {
            parsed.exact_budget_ms = v.parse().expect("--exact-budget-ms needs an integer");
        } else if arg == "--jobs" {
            parsed.jobs = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--jobs needs a positive integer");
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            parsed.jobs = v.parse().expect("--jobs needs a positive integer");
        } else if arg == "--corpus" {
            parsed.corpus = PathBuf::from(args.next().expect("--corpus needs a directory"));
        } else if let Some(v) = arg.strip_prefix("--corpus=") {
            parsed.corpus = PathBuf::from(v);
        } else if arg == "--metrics" {
            parsed.metrics = Some(args.next().expect("--metrics needs a file path"));
        } else if let Some(v) = arg.strip_prefix("--metrics=") {
            parsed.metrics = Some(v.to_string());
        } else if arg == "--replay" {
            parsed.replay = Some(PathBuf::from(
                args.next().expect("--replay needs a directory"),
            ));
        } else if let Some(v) = arg.strip_prefix("--replay=") {
            parsed.replay = Some(PathBuf::from(v));
        } else if arg == "--router" {
            parsed.fanout = parse_fanout(&args.next().expect("--router needs tree or per-edge"));
        } else if let Some(v) = arg.strip_prefix("--router=") {
            parsed.fanout = parse_fanout(v);
        } else {
            panic!("unrecognised argument `{arg}`");
        }
    }
    parsed
}

fn write_metrics(path: &str) {
    let mut json = rewire_obs::metrics().snapshot().to_json();
    json.push('\n');
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write metrics file {path}: {e}"));
    eprintln!("metrics written to {path}");
}

/// Replay mode: every artifact in the directory must match its recorded
/// expectation.
fn run_replay(dir: &Path, cfg: &FuzzConfig) -> ExitCode {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            (path.extension().is_some_and(|e| e == "dfg")).then_some(path)
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no .dfg artifacts in {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let artifact =
            Artifact::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        match replay(&artifact, cfg) {
            Ok(_) => println!("OK   {} ({})", path.display(), artifact.expect),
            Err(reason) => {
                println!("FAIL {}: {reason}", path.display());
                failures += 1;
            }
        }
    }
    println!(
        "replayed {} artifacts, {} failure(s)",
        paths.len(),
        failures
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args(std::env::args().skip(1));
    rewire_mrrg::set_default_fanout_mode(args.fanout);
    let cfg = FuzzConfig {
        budget_ms: args.budget_ms,
        exact_budget_ms: args.exact_budget_ms,
        ..FuzzConfig::default()
    };

    if let Some(dir) = &args.replay {
        let code = run_replay(dir, &cfg);
        if let Some(path) = &args.metrics {
            write_metrics(path);
        }
        return code;
    }

    let n = args.seeds.end - args.seeds.start;
    eprintln!(
        "fuzzing seeds {}..{} (budget {} ms/II, exact oracle {}, {} jobs)",
        args.seeds.start,
        args.seeds.end,
        args.budget_ms,
        if args.exact_budget_ms > 0 {
            format!("{} ms/II", args.exact_budget_ms)
        } else {
            "off".to_string()
        },
        args.jobs
    );
    let started = Instant::now();
    let reports = fuzz_range(args.seeds.clone(), &cfg, args.jobs);
    let elapsed = started.elapsed();

    let mut failing = 0usize;
    for report in &reports {
        if report.clean() {
            continue;
        }
        failing += 1;
        print!("{}", report.render());
        if let Some(artifact) = &report.artifact {
            std::fs::create_dir_all(&args.corpus)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", args.corpus.display()));
            let path = args.corpus.join(artifact.file_name());
            std::fs::write(&path, artifact.to_text())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            println!("  reproducer written to {}", path.display());
        }
    }

    let per_sec = n as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "fuzzed {n} seeds in {:.2}s ({per_sec:.1} scenarios/s): {} clean, {failing} failing",
        elapsed.as_secs_f64(),
        reports.len() - failing
    );
    let snapshot = rewire_obs::metrics().snapshot();
    for kind in CheckKind::all() {
        let name = format!("fuzz.checks.{kind}");
        let fired = snapshot
            .scopes
            .get("fuzz")
            .and_then(|s| s.counters.get(&name))
            .copied()
            .unwrap_or(0);
        println!("  check {kind}: {fired} violation(s)");
    }
    if let Some(path) = &args.metrics {
        write_metrics(path);
    }
    if failing == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
