//! Differential fuzzing for the Rewire mapper stack.
//!
//! One fuzz seed deterministically produces one scenario — a random DFG
//! (via [`rewire_dfg::generate`]) on a random fabric (via
//! [`rewire_arch::random`]) — which is mapped by all four mappers through
//! the shared ascending-II engine and checked against a four-layer oracle
//! stack:
//!
//! 1. **Structural** — every produced mapping validates, is complete, and
//!    agrees with its own stats.
//! 2. **Semantic** — mapped kernels execute bit-identically to the DFG
//!    golden model ([`rewire_sim::verify_semantics`]).
//! 3. **MII bound** — no mapper claims an II below `max(ResMII, RecMII)`.
//! 4. **Cross-mapper** — no mapper claims infeasibility without sweeping
//!    the full II range; optimality/completeness agreement against the
//!    exhaustive oracle is additionally enforced when its search is
//!    trusted as complete ([`oracle::CrossMapperPolicy`]).
//!
//! On a violation the scenario is greedily shrunk ([`mod@shrink`]) to a
//! minimal reproducer and persisted as a self-contained text artifact
//! ([`artifact`]) under `fuzz/corpus/`, which the corpus regression test
//! replays in CI.
//!
//! Everything is observe-only with respect to the mappers: the fuzz loop
//! derives its sub-seeds with the same SplitMix64 mix the engine uses, but
//! never reaches into mapper state, so a scenario maps identically inside
//! and outside the harness.

pub mod artifact;
pub mod oracle;
pub mod run;
pub mod scenario;
pub mod shrink;

pub use artifact::{Artifact, Expectation, ParseArtifactError};
pub use oracle::{run_oracle, CheckKind, CrossMapperPolicy, MapperRun, OracleConfig, Violation};
pub use run::{
    differential_mappers, evaluate, fuzz_one, fuzz_range, replay, FuzzConfig, SeedReport,
    EXHAUSTIVE_SEARCH_CAP,
};
pub use scenario::{mix, Scenario};
pub use shrink::{render_trace, shrink, ShrinkResult};
