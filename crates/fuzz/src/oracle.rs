//! The oracle stack: everything a mapping outcome is checked against.
//!
//! Four independent checks, in increasing strength:
//!
//! 1. **Structural** — a returned mapping must validate against the DFG
//!    and fabric, be complete, and agree with its own reported stats.
//! 2. **Semantic** — the mapped machine must compute exactly what the DFG
//!    computes ([`rewire_sim::verify_semantics`] golden-model run).
//! 3. **MII bound** — no mapper may claim an II below the theoretical
//!    minimum `max(ResMII, RecMII)`, nor map an instance whose MII is
//!    undefined.
//! 4. **Cross-mapper** — no mapper may claim infeasibility without
//!    sweeping the full II range; and, when the exhaustive oracle is
//!    trusted as complete ([`CrossMapperPolicy`]), no heuristic may beat
//!    its optimum and it may not miss an instance a heuristic proves
//!    feasible.
//! 5. **Exact verdict** — when the SAT backend ran (the `"Exact"` run),
//!    its machine-checked per-II verdicts must agree with every other
//!    mapper: a heuristic mapping at an II the SAT solver *proved*
//!    infeasible means one of the two is wrong, and the heuristic's
//!    validated mapping is the feasibility certificate that convicts the
//!    encoder. Unlike the exhaustive cross-check, this layer needs no
//!    trust policy — UNSAT is a proof, not a search give-up — but it is
//!    horizon-guarded: the proof only covers schedules within
//!    [`ExactSatMapper::proof_horizon`], so a heuristic mapping scheduled
//!    beyond it is out of scope rather than a contradiction.
//!
//! Every check is a standalone function returning violations rather than
//! panicking, so the shrinker can re-run the stack cheaply and unit tests
//! can demonstrate seeded violations being caught.

use rewire_arch::Cgra;
use rewire_dfg::Dfg;
use rewire_mappers::{AttemptVerdict, ExactSatMapper, MapOutcome, Mapping};
use rewire_sim::{verify_semantics, Inputs};
use std::fmt;

/// Which oracle check fired.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CheckKind {
    /// Structural mapping invariants.
    Structural,
    /// Golden-model equivalence.
    Semantic,
    /// `achieved II ≥ MII` lower-bound sanity.
    MiiBound,
    /// Exhaustive-vs-heuristic feasibility/optimality agreement.
    CrossMapper,
    /// SAT-proof-vs-heuristic agreement: nobody maps at a proven-UNSAT II.
    ExactVerdict,
}

impl CheckKind {
    /// Stable snake_case label (metrics scopes, artifact files).
    pub fn label(self) -> &'static str {
        match self {
            CheckKind::Structural => "structural",
            CheckKind::Semantic => "semantic",
            CheckKind::MiiBound => "mii_bound",
            CheckKind::CrossMapper => "cross_mapper",
            CheckKind::ExactVerdict => "exact_verdict",
        }
    }

    /// Parses a [`label`](CheckKind::label) back.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "structural" => Some(CheckKind::Structural),
            "semantic" => Some(CheckKind::Semantic),
            "mii_bound" => Some(CheckKind::MiiBound),
            "cross_mapper" => Some(CheckKind::CrossMapper),
            "exact_verdict" => Some(CheckKind::ExactVerdict),
            _ => None,
        }
    }

    /// All checks, in evaluation order.
    pub fn all() -> [CheckKind; 5] {
        [
            CheckKind::Structural,
            CheckKind::Semantic,
            CheckKind::MiiBound,
            CheckKind::CrossMapper,
            CheckKind::ExactVerdict,
        ]
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One oracle violation: which check fired, on whose outcome, and why.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// The check that fired.
    pub check: CheckKind,
    /// The mapper whose outcome violated it (`"*"` for cross-mapper
    /// disagreements attributed to the comparison itself).
    pub mapper: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.check, self.mapper, self.detail)
    }
}

/// One mapper's outcome on a scenario, as the oracle consumes it.
#[derive(Clone, Debug)]
pub struct MapperRun {
    /// Mapper display name (`"Rewire"`, `"PF*"`, `"SA"`, `"Exhaustive"`).
    pub name: String,
    /// What it produced.
    pub outcome: MapOutcome,
}

/// Context the full stack needs beyond the outcomes themselves.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Theoretical minimum II of the scenario (`None` = unmappable).
    pub mii: Option<u32>,
    /// The `max_ii` every mapper swept to (for truncation detection).
    pub max_ii: u32,
    /// Seed for the golden-model input streams.
    pub input_seed: u64,
    /// Iterations simulated by the semantic check.
    pub sim_iterations: u32,
    /// How far to trust the exhaustive oracle's *failures*.
    pub cross_mapper: CrossMapperPolicy,
}

/// Trust policy for the cross-mapper comparison.
///
/// The exhaustive mapper's *successes* are always trustworthy: a returned
/// mapping is a certificate of feasibility (and is independently checked
/// by the structural and semantic layers). Its *failures* are only proofs
/// of infeasibility when its search is genuinely complete — which this
/// workspace's branch-and-bound is not: it bounds schedule times by a
/// finite horizon and commits the router's single greedy route per edge
/// instead of backtracking over routing alternatives. A heuristic can
/// therefore legitimately map below the "exhaustive optimum".
#[derive(Clone, Copy, Debug, Default)]
pub struct CrossMapperPolicy {
    /// Treat the exhaustive search as complete: its failure at an II is a
    /// proof of infeasibility, enabling the optimality and completeness
    /// sub-checks. Leave `false` (the default) for this workspace's
    /// bounded-horizon, greedy-routed oracle; set `true` in unit tests
    /// exercising those sub-checks with synthetic outcomes.
    pub exhaustive_complete: bool,
    /// The exhaustive mapper's deterministic search-node cap, if one was
    /// configured. The oracle reports its search-tree size as
    /// `remap_iterations`; when that total reaches the cap, some II of
    /// its sweep was truncated and even a `exhaustive_complete` search
    /// proves nothing about the IIs it failed. `None` = uncapped.
    pub exhaustive_search_cap: Option<u64>,
}

impl CrossMapperPolicy {
    /// The policy unit tests use: a hypothetically complete, uncapped
    /// exhaustive search whose failures are proofs.
    pub fn trusting() -> Self {
        Self {
            exhaustive_complete: true,
            exhaustive_search_cap: None,
        }
    }
}

/// Check 1: structural invariants of a returned mapping, plus
/// outcome-internal consistency.
pub fn check_structural(
    dfg: &Dfg,
    cgra: &Cgra,
    name: &str,
    outcome: &MapOutcome,
) -> Option<Violation> {
    let fail = |detail: String| {
        Some(Violation {
            check: CheckKind::Structural,
            mapper: name.to_string(),
            detail,
        })
    };
    let Some(mapping) = &outcome.mapping else {
        // No mapping: stats must agree.
        if outcome.stats.achieved_ii.is_some() {
            return fail("no mapping returned but stats claim an achieved II".into());
        }
        return None;
    };
    if let Err(issues) = mapping.validate(dfg, cgra) {
        let mut detail = format!("{} validation issues:", issues.len());
        for i in issues.iter().take(3) {
            detail.push_str(&format!(" {i};"));
        }
        return fail(detail);
    }
    if !mapping.is_complete(dfg) {
        return fail("mapping validates but is incomplete".into());
    }
    match outcome.stats.achieved_ii {
        Some(ii) if ii != mapping.ii() => fail(format!(
            "stats claim II {ii} but the mapping's II is {}",
            mapping.ii()
        )),
        None => fail("mapping returned but stats claim failure".into()),
        _ => None,
    }
}

/// Check 2: golden-model equivalence of a returned mapping.
pub fn check_semantics(
    dfg: &Dfg,
    cgra: &Cgra,
    name: &str,
    mapping: &Mapping,
    input_seed: u64,
    iterations: u32,
) -> Option<Violation> {
    let inputs = Inputs::new(input_seed);
    verify_semantics(dfg, cgra, mapping, &inputs, iterations)
        .err()
        .map(|e| Violation {
            check: CheckKind::Semantic,
            mapper: name.to_string(),
            detail: e.to_string(),
        })
}

/// Check 3: `achieved II ≥ MII`, and nothing maps when MII is undefined.
pub fn check_mii_bound(name: &str, mii: Option<u32>, outcome: &MapOutcome) -> Option<Violation> {
    let achieved = outcome.stats.achieved_ii?;
    let fail = |detail: String| {
        Some(Violation {
            check: CheckKind::MiiBound,
            mapper: name.to_string(),
            detail,
        })
    };
    match mii {
        None => fail(format!(
            "achieved II {achieved} on an instance whose MII is undefined"
        )),
        Some(mii) if achieved < mii => {
            fail(format!("achieved II {achieved} is below the MII {mii}"))
        }
        Some(_) => None,
    }
}

/// Check 4: cross-mapper feasibility/optimality agreement.
///
/// Three sub-checks, each sound for *incomplete* heuristics (a heuristic
/// legitimately failing where the exhaustive oracle succeeds is not a
/// bug — incompleteness is its contract):
///
/// * **Early bail** — always on. A mapper that claims infeasibility must
///   have swept the entire `mii..=max_ii` range. The engine has no reason
///   to skip an II when no total budget is set (per-II budgets truncate
///   *within* an II, never the sweep itself), so `iis_explored < full
///   span` on a failed run means the mapper bailed below its budget — the
///   "infeasibility claimed below the time budget" class. The exhaustive
///   oracle's up-front refusal of large instances (`iis_explored == 0`)
///   is exempt.
/// * **Optimality** — only under [`CrossMapperPolicy::exhaustive_complete`].
///   When the exhaustive oracle maps at `k`, its failures at every
///   `II < k` are proofs of infeasibility, so no heuristic may achieve
///   `II < k` — one of the two mappers is broken if it does.
/// * **Completeness** — only under `exhaustive_complete`. When the
///   exhaustive oracle swept the full range and claims infeasibility, no
///   heuristic may produce a (structurally and semantically validated)
///   mapping in that range: the heuristic's mapping is a feasibility
///   certificate, so the "complete" search has a pruning bug.
///
/// The harness runs with `exhaustive_complete = false` because this
/// workspace's exhaustive mapper is complete over *placements* only: it
/// commits the router's single greedy route per edge (no routing
/// backtracking) and bounds schedule times by a finite horizon, so its
/// failures are not proofs and heuristics genuinely beat its "optimum"
/// on a sizeable fraction of random scenarios. Both sub-checks also
/// require the search to be untruncated: when
/// [`CrossMapperPolicy::exhaustive_search_cap`] is set and the oracle's
/// reported search-node total reached it, both are skipped.
pub fn check_cross_mapper(
    runs: &[MapperRun],
    mii: Option<u32>,
    max_ii: u32,
    policy: &CrossMapperPolicy,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(mii) = mii else {
        return out;
    };
    let full_span = max_ii.saturating_sub(mii) + 1;

    for r in runs {
        // Both oracle-grade mappers refuse oversized instances up front
        // (0 IIs explored) rather than sweeping; that is not an early bail.
        let refused =
            (r.name == "Exhaustive" || r.name == "Exact") && r.outcome.stats.iis_explored == 0;
        if r.outcome.stats.achieved_ii.is_none()
            && r.outcome.stats.iis_explored < full_span
            && !refused
        {
            out.push(Violation {
                check: CheckKind::CrossMapper,
                mapper: r.name.clone(),
                detail: format!(
                    "claims infeasibility after exploring only {} of the {full_span} IIs \
                     in {mii}..={max_ii}",
                    r.outcome.stats.iis_explored
                ),
            });
        }
    }

    if !policy.exhaustive_complete {
        return out;
    }
    let Some(exhaustive) = runs.iter().find(|r| r.name == "Exhaustive") else {
        return out;
    };
    let untruncated = policy
        .exhaustive_search_cap
        .is_none_or(|cap| exhaustive.outcome.stats.remap_iterations < cap);
    if !untruncated {
        return out;
    }
    match exhaustive.outcome.stats.achieved_ii {
        Some(best) => {
            for r in runs.iter().filter(|r| r.name != "Exhaustive") {
                if let Some(ii) = r.outcome.stats.achieved_ii {
                    if ii < best {
                        out.push(Violation {
                            check: CheckKind::CrossMapper,
                            mapper: r.name.clone(),
                            detail: format!(
                                "achieved II {ii} beats the exhaustive optimum {best} — \
                                 one of them is wrong"
                            ),
                        });
                    }
                }
            }
        }
        None if exhaustive.outcome.stats.iis_explored >= full_span => {
            for r in runs.iter().filter(|r| r.name != "Exhaustive") {
                if let Some(ii) = r.outcome.stats.achieved_ii {
                    out.push(Violation {
                        check: CheckKind::CrossMapper,
                        mapper: "Exhaustive".into(),
                        detail: format!(
                            "claims infeasibility over {mii}..={max_ii} but {} maps at II {ii}",
                            r.name
                        ),
                    });
                }
            }
        }
        None => {}
    }
    out
}

/// Check 5: SAT-verdict agreement.
///
/// For every II the `"Exact"` run *proved* infeasible
/// ([`AttemptVerdict::InfeasibleAtII`]), no other mapper may have produced
/// a mapping at exactly that II — a validated mapping is a feasibility
/// certificate, so such a pair convicts the CNF encoder (or the heuristic
/// whose mapping slipped past validation). Two deliberate scope limits
/// keep the check sound:
///
/// * **Horizon guard** — the encoder only quantifies over schedules whose
///   latest operation is at or below
///   [`ExactSatMapper::proof_horizon`]`(dfg, ii)`. Rewire's execution
///   horizon can ratchet past that bound across amendment rounds, so a
///   heuristic mapping scheduled beyond it contradicts nothing.
/// * `Unknown` verdicts (budget truncation) and the mapped II's own
///   `Optimal` verdict constrain nobody.
///
/// The converse direction needs no code: the exact backend's *successes*
/// flow through the structural, semantic, and MII layers like any other
/// mapper's, so a SAT model that decodes into a broken mapping is caught
/// there.
pub fn check_exact_verdicts(dfg: &Dfg, runs: &[MapperRun]) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(exact) = runs.iter().find(|r| r.name == "Exact") else {
        return out;
    };
    for &(ii, verdict) in &exact.outcome.stats.verdicts {
        if verdict != AttemptVerdict::InfeasibleAtII {
            continue;
        }
        let horizon = ExactSatMapper::proof_horizon(dfg, ii);
        for r in runs.iter().filter(|r| r.name != "Exact") {
            let Some(mapping) = &r.outcome.mapping else {
                continue;
            };
            if r.outcome.stats.achieved_ii != Some(ii) {
                continue;
            }
            // `schedule_length` is the latest placed time plus one, so a
            // mapping is inside the proof's scope iff it stays ≤ H + 1.
            let fill = mapping.schedule_length();
            if fill > horizon + 1 {
                continue;
            }
            out.push(Violation {
                check: CheckKind::ExactVerdict,
                mapper: r.name.clone(),
                detail: format!(
                    "maps at II {ii} (schedule length {fill}) but the SAT backend proved \
                     II {ii} infeasible within horizon {horizon}"
                ),
            });
        }
    }
    out
}

/// Runs the whole stack over every outcome and returns all violations, in
/// deterministic (run, check) order.
pub fn run_oracle(
    dfg: &Dfg,
    cgra: &Cgra,
    runs: &[MapperRun],
    cfg: &OracleConfig,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for r in runs {
        if let Some(v) = check_structural(dfg, cgra, &r.name, &r.outcome) {
            out.push(v);
            // A structurally broken mapping is not worth simulating.
            continue;
        }
        if let Some(m) = &r.outcome.mapping {
            if let Some(v) =
                check_semantics(dfg, cgra, &r.name, m, cfg.input_seed, cfg.sim_iterations)
            {
                out.push(v);
            }
        }
        if let Some(v) = check_mii_bound(&r.name, cfg.mii, &r.outcome) {
            out.push(v);
        }
    }
    out.extend(check_cross_mapper(
        runs,
        cfg.mii,
        cfg.max_ii,
        &cfg.cross_mapper,
    ));
    out.extend(check_exact_verdicts(dfg, runs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::{presets, Coord, OpKind, PeId};
    use rewire_dfg::EdgeId;
    use rewire_mappers::{MapLimits, MapStats, Mapper, PathFinderMapper};
    use rewire_mrrg::{Mrrg, Resource, Route, Router, UnitCost};

    fn pe(cgra: &Cgra, r: u16, c: u16) -> PeId {
        cgra.pe_at(Coord::new(r, c)).unwrap().id()
    }

    /// A two-node kernel mapped by hand on the paper fabric at II 2.
    fn mapped_pair() -> (Dfg, Cgra, Mapping) {
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("pair");
        let a = dfg.add_node("a", OpKind::Const);
        let b = dfg.add_node("b", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        dfg.add_edge(a, b, 0).unwrap();
        let mrrg = Mrrg::new(&cgra, 2);
        let router = Router::new(&cgra, &mrrg);
        let mut m = Mapping::new(&dfg, &mrrg);
        m.place(a, pe(&cgra, 0, 0), 0);
        m.place(b, pe(&cgra, 0, 2), 3);
        for e in [0u32, 1] {
            let id = EdgeId::new(e);
            let req = m.request_for(&dfg, id).unwrap();
            let route = router.route(m.occupancy(), &req, &UnitCost).unwrap();
            m.set_route(id, route);
        }
        assert!(m.is_valid(&dfg, &cgra));
        (dfg, cgra, m)
    }

    fn stats(ii: Option<u32>, mii: u32, iis_explored: u32) -> MapStats {
        MapStats {
            mapper: "X".into(),
            kernel: "k".into(),
            mii,
            achieved_ii: ii,
            iis_explored,
            ..MapStats::default()
        }
    }

    #[test]
    fn structural_accepts_a_real_mapping() {
        let (dfg, cgra, m) = mapped_pair();
        let outcome = MapOutcome {
            stats: stats(Some(m.ii()), 1, 2),
            mapping: Some(m),
        };
        assert_eq!(check_structural(&dfg, &cgra, "PF*", &outcome), None);
    }

    #[test]
    fn structural_catches_seeded_corruption() {
        // Unplacing a node after the fact leaves an incomplete mapping —
        // exactly the kind of inconsistent outcome a buggy mapper could
        // return.
        let (dfg, cgra, mut m) = mapped_pair();
        m.unplace(&dfg, dfg.node_by_name("b").unwrap().id());
        let ii = m.ii();
        let outcome = MapOutcome {
            mapping: Some(m),
            stats: stats(Some(ii), 1, 2),
        };
        let v = check_structural(&dfg, &cgra, "PF*", &outcome).expect("must fire");
        assert_eq!(v.check, CheckKind::Structural);
        assert_eq!(v.mapper, "PF*");
    }

    #[test]
    fn structural_catches_stats_mapping_disagreement() {
        let (dfg, cgra, m) = mapped_pair();
        let outcome = MapOutcome {
            stats: stats(Some(m.ii() + 1), 1, 2), // lies about the II
            mapping: Some(m),
        };
        let v = check_structural(&dfg, &cgra, "PF*", &outcome).expect("must fire");
        assert!(v.detail.contains("mapping's II"), "{v}");
    }

    #[test]
    fn semantic_accepts_a_correct_mapping() {
        let (dfg, cgra, m) = mapped_pair();
        assert_eq!(check_semantics(&dfg, &cgra, "PF*", &m, 1, 4), None);
    }

    #[test]
    fn semantic_catches_a_seeded_wrong_slot_route() {
        // Swap in a hand-built route whose cells sit in the wrong modulo
        // slot. Structural validation does not inspect slots (the request
        // endpoints still match), so only the golden-model run can catch
        // it — which is exactly why the stack needs both checks.
        let (dfg, cgra, mut m) = mapped_pair();
        let edge = EdgeId::new(0);
        let good = m.route(edge).unwrap().clone();
        let corrupted: Vec<Resource> = good
            .resources()
            .iter()
            .map(|r| match *r {
                Resource::Reg { pe, reg, slot } => Resource::Reg {
                    pe,
                    reg,
                    slot: (slot + 1) % 2,
                },
                Resource::Link { link, slot } => Resource::Link {
                    link,
                    slot: (slot + 1) % 2,
                },
                Resource::Fu { pe, slot } => Resource::Fu {
                    pe,
                    slot: (slot + 1) % 2,
                },
            })
            .collect();
        m.clear_route(edge);
        m.set_route(
            edge,
            Route::from_parts(*good.request(), corrupted, good.cost()),
        );
        assert!(
            m.is_valid(&dfg, &cgra),
            "corruption must slip past structural validation for this test to bite"
        );
        let v = check_semantics(&dfg, &cgra, "PF*", &m, 1, 4).expect("must fire");
        assert_eq!(v.check, CheckKind::Semantic);
        assert!(v.detail.contains("slot"), "{v}");
    }

    #[test]
    fn mii_bound_accepts_and_catches() {
        let ok = MapOutcome {
            mapping: None,
            stats: stats(Some(3), 3, 1),
        };
        assert_eq!(check_mii_bound("SA", Some(3), &ok), None);

        let below = MapOutcome {
            mapping: None,
            stats: stats(Some(2), 3, 1),
        };
        let v = check_mii_bound("SA", Some(3), &below).expect("must fire");
        assert_eq!(v.check, CheckKind::MiiBound);
        assert!(v.detail.contains("below the MII"), "{v}");

        let impossible = MapOutcome {
            mapping: None,
            stats: stats(Some(4), 0, 1),
        };
        let v = check_mii_bound("SA", None, &impossible).expect("must fire");
        assert!(v.detail.contains("undefined"), "{v}");
    }

    fn run(name: &str, ii: Option<u32>, iis_explored: u32) -> MapperRun {
        MapperRun {
            name: name.into(),
            outcome: MapOutcome {
                mapping: None,
                stats: stats(ii, 2, iis_explored),
            },
        }
    }

    #[test]
    fn cross_mapper_catches_an_early_bail() {
        // SA claims infeasibility after exploring only 2 of the 4 IIs in
        // 2..=5 — it bailed out of the sweep below its budget, a seeded
        // engine-contract violation. Fires regardless of the trust policy.
        let runs = [run("Exhaustive", Some(2), 1), run("SA", None, 2)];
        for policy in [CrossMapperPolicy::default(), CrossMapperPolicy::trusting()] {
            let v = check_cross_mapper(&runs, Some(2), 5, &policy);
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].check, CheckKind::CrossMapper);
            assert_eq!(v[0].mapper, "SA");
            assert!(v[0].detail.contains("only 2 of the 4 IIs"), "{}", v[0]);
        }
    }

    #[test]
    fn cross_mapper_catches_impossible_optimality() {
        let runs = [run("Exhaustive", Some(3), 2), run("Rewire", Some(2), 1)];
        let v = check_cross_mapper(&runs, Some(2), 5, &CrossMapperPolicy::trusting());
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("beats the exhaustive optimum"));
    }

    #[test]
    fn cross_mapper_distrusts_an_incomplete_exhaustive_search() {
        // Same disagreement, but under the harness policy: the workspace's
        // exhaustive mapper routes greedily, so its failure below II 3 is
        // no proof and the heuristic's better II is legitimate.
        let runs = [run("Exhaustive", Some(3), 2), run("Rewire", Some(2), 1)];
        assert!(check_cross_mapper(&runs, Some(2), 5, &CrossMapperPolicy::default()).is_empty());
    }

    #[test]
    fn cross_mapper_distrusts_a_truncated_exhaustive_search() {
        // A trusted-complete search whose search-node total reached its
        // deterministic cap: its "optimum" may be an artifact of
        // truncation, so nothing fires.
        let capped = CrossMapperPolicy {
            exhaustive_complete: true,
            exhaustive_search_cap: Some(10_000),
        };
        let mut exhaustive = run("Exhaustive", Some(3), 2);
        exhaustive.outcome.stats.remap_iterations = 10_000;
        let runs = [exhaustive, run("Rewire", Some(2), 1)];
        assert!(check_cross_mapper(&runs, Some(2), 5, &capped).is_empty());
        // Below the cap the search completed and the check bites again.
        let mut exhaustive = run("Exhaustive", Some(3), 2);
        exhaustive.outcome.stats.remap_iterations = 9_999;
        let runs = [exhaustive, run("Rewire", Some(2), 1)];
        assert_eq!(check_cross_mapper(&runs, Some(2), 5, &capped).len(), 1);
    }

    #[test]
    fn cross_mapper_catches_a_completeness_hole() {
        // The trusted exhaustive oracle swept all of 2..=5 and found
        // nothing, yet SA produced a (validated) mapping at II 3: the
        // complete search missed a feasible instance — a seeded pruning
        // bug, certified by SA's mapping.
        let runs = [run("Exhaustive", None, 4), run("SA", Some(3), 2)];
        let v = check_cross_mapper(&runs, Some(2), 5, &CrossMapperPolicy::trusting());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].mapper, "Exhaustive");
        assert!(v[0].detail.contains("SA maps at II 3"), "{}", v[0]);
        // Under the harness policy the same hole is expected incompleteness.
        assert!(check_cross_mapper(&runs, Some(2), 5, &CrossMapperPolicy::default()).is_empty());
    }

    #[test]
    fn cross_mapper_tolerates_legitimate_disagreement() {
        let trusting = CrossMapperPolicy::trusting();
        // A heuristic failing its *full* sweep where exhaustive succeeds
        // is incompleteness, not a bug.
        let runs = [run("Exhaustive", Some(2), 1), run("SA", None, 4)];
        assert!(check_cross_mapper(&runs, Some(2), 5, &trusting).is_empty());
        // The exhaustive refusal path (0 IIs explored on a big DFG) is
        // not an early bail.
        let refused = [run("Exhaustive", None, 0), run("SA", Some(3), 2)];
        assert!(check_cross_mapper(&refused, Some(2), 5, &trusting).is_empty());
        // No exhaustive run at all: only the sweep-contract check applies.
        let only = [run("SA", None, 4)];
        assert!(check_cross_mapper(&only, Some(2), 5, &trusting).is_empty());
    }

    #[test]
    fn full_stack_is_clean_on_a_real_mapper_run() {
        let cgra = presets::paper_4x4_r4();
        let dfg = rewire_dfg::kernels::fir();
        let limits = MapLimits::fast();
        let outcome = PathFinderMapper::new().map(&dfg, &cgra, &limits);
        let runs = [MapperRun {
            name: "PF*".into(),
            outcome,
        }];
        let cfg = OracleConfig {
            mii: dfg.mii(&cgra),
            max_ii: limits.max_ii,
            input_seed: 1,
            sim_iterations: 6,
            cross_mapper: CrossMapperPolicy::default(),
        };
        assert_eq!(run_oracle(&dfg, &cgra, &runs, &cfg), vec![]);
    }

    #[test]
    fn labels_round_trip() {
        for c in CheckKind::all() {
            assert_eq!(CheckKind::from_label(c.label()), Some(c));
        }
        assert_eq!(CheckKind::from_label("nope"), None);
    }

    /// A synthetic `"Exact"` run with the given per-II verdicts and no
    /// mapping of its own.
    fn exact_run(verdicts: Vec<(u32, rewire_mappers::AttemptVerdict)>) -> MapperRun {
        let mut st = stats(None, 2, verdicts.len() as u32);
        st.verdicts = verdicts;
        MapperRun {
            name: "Exact".into(),
            outcome: MapOutcome {
                mapping: None,
                stats: st,
            },
        }
    }

    #[test]
    fn exact_verdict_catches_a_mapping_at_a_proven_unsat_ii() {
        use rewire_mappers::AttemptVerdict;
        let (dfg, _cgra, m) = mapped_pair();
        let ii = m.ii();
        let heuristic = MapperRun {
            name: "PF*".into(),
            outcome: MapOutcome {
                stats: stats(Some(ii), 1, 2),
                mapping: Some(m),
            },
        };
        // The SAT backend "proved" the II the heuristic mapped at
        // infeasible — a seeded encoder bug the layer must convict.
        let exact = exact_run(vec![(ii, AttemptVerdict::InfeasibleAtII)]);
        let v = check_exact_verdicts(&dfg, &[heuristic, exact]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, CheckKind::ExactVerdict);
        assert_eq!(v[0].mapper, "PF*");
        assert!(v[0].detail.contains("proved"), "{}", v[0]);
    }

    #[test]
    fn exact_verdict_tolerates_agreement_unknowns_and_other_iis() {
        use rewire_mappers::AttemptVerdict;
        let (dfg, _cgra, m) = mapped_pair();
        let ii = m.ii();
        let heuristic = MapperRun {
            name: "PF*".into(),
            outcome: MapOutcome {
                stats: stats(Some(ii), 1, 2),
                mapping: Some(m),
            },
        };
        // Infeasibility proven strictly below the achieved II, an Unknown
        // at the achieved II, and an Optimal all constrain nothing.
        let exact = exact_run(vec![
            (ii - 1, AttemptVerdict::InfeasibleAtII),
            (ii, AttemptVerdict::Unknown { conflicts: 9 }),
            (ii + 1, AttemptVerdict::Optimal),
        ]);
        assert!(check_exact_verdicts(&dfg, &[heuristic, exact]).is_empty());
        // No Exact run at all: the layer is inert.
        let lone = [run("SA", Some(2), 1)];
        assert!(check_exact_verdicts(&dfg, &lone).is_empty());
    }

    #[test]
    fn exact_verdict_is_horizon_guarded() {
        use rewire_mappers::AttemptVerdict;
        // A mapping whose pipeline fill exceeds the proof horizon sits
        // outside the UNSAT proof's quantifier, so nothing may fire even
        // though the achieved IIs coincide.
        let (dfg, cgra, m) = mapped_pair();
        let ii = m.ii();
        let horizon = rewire_mappers::ExactSatMapper::proof_horizon(&dfg, ii);
        assert!(
            m.schedule_length() <= horizon + 1,
            "the honest mapping must sit inside the horizon"
        );
        let mrrg = Mrrg::new(&cgra, ii);
        let router = Router::new(&cgra, &mrrg);
        let mut late = Mapping::new(&dfg, &mrrg);
        let a = dfg.node_by_name("a").unwrap().id();
        let b = dfg.node_by_name("b").unwrap().id();
        late.place(a, pe(&cgra, 0, 0), horizon);
        late.place(b, pe(&cgra, 0, 1), horizon + 1);
        for e in [0u32, 1] {
            let id = EdgeId::new(e);
            let req = late.request_for(&dfg, id).unwrap();
            let route = router.route(late.occupancy(), &req, &UnitCost).unwrap();
            late.set_route(id, route);
        }
        assert!(late.schedule_length() > horizon + 1);
        let heuristic = MapperRun {
            name: "Rewire".into(),
            outcome: MapOutcome {
                stats: stats(Some(ii), 1, 2),
                mapping: Some(late),
            },
        };
        let exact = exact_run(vec![(ii, AttemptVerdict::InfeasibleAtII)]);
        assert!(check_exact_verdicts(&dfg, &[heuristic, exact]).is_empty());
    }

    #[test]
    fn full_stack_is_clean_with_the_real_exact_backend() {
        // PF* and the real SAT backend on the same small kernel: the
        // exact run's verdicts must never convict an honest mapping, and
        // its own mapping must clear the structural/semantic/MII layers.
        let cgra = presets::paper_4x4_r4();
        let mut dfg = Dfg::new("tri");
        let a = dfg.add_node("a", OpKind::Const);
        let b = dfg.add_node("b", OpKind::Add);
        let c = dfg.add_node("c", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        dfg.add_edge(a, c, 0).unwrap();
        dfg.add_edge(b, c, 0).unwrap();
        let limits = MapLimits::fast();
        let runs = [
            MapperRun {
                name: "PF*".into(),
                outcome: PathFinderMapper::new().map(&dfg, &cgra, &limits),
            },
            MapperRun {
                name: "Exact".into(),
                outcome: rewire_mappers::ExactSatMapper::new().map(&dfg, &cgra, &limits),
            },
        ];
        assert!(runs[1].outcome.stats.proven_optimal());
        let cfg = OracleConfig {
            mii: dfg.mii(&cgra),
            max_ii: limits.max_ii,
            input_seed: 3,
            sim_iterations: 6,
            cross_mapper: CrossMapperPolicy::default(),
        };
        assert_eq!(run_oracle(&dfg, &cgra, &runs, &cfg), vec![]);
    }
}
