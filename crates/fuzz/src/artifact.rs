//! Self-contained failure artifacts: everything needed to replay one
//! scenario, in one plain-text file.
//!
//! Format (version 1): a key–value header followed by the embedded DFG in
//! the standard `rewire_dfg` text format. `#` comments and blank lines are
//! allowed anywhere before the DFG block.
//!
//! ```text
//! # rewire-fuzz artifact v1
//! seed 42
//! arch 3x3 regs=1 banks=2 memcols=0
//! max-ii 6
//! expect pass
//! note shrunk from 11 nodes; register-pressure hard case
//! shrink-steps 9
//! dfg random-42
//! node v0 load
//! node v1 add
//! edge v0 v1
//! ```
//!
//! `expect pass` artifacts are regression pins: the scenario once
//! misbehaved (or is a hand-minimized hard case) and must now clear the
//! whole oracle stack. `expect fail <check>` artifacts pin a *live* bug:
//! replay must still reproduce a violation of the named check, so the
//! artifact keeps failing loudly until the bug is fixed (then flips to
//! `expect pass`).

use crate::oracle::CheckKind;
use rewire_arch::random::CgraSpec;
use rewire_dfg::Dfg;
use std::error::Error;
use std::fmt;

/// What replaying an artifact must observe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// The full oracle stack passes.
    Pass,
    /// The named check still fires.
    Fail(CheckKind),
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expectation::Pass => f.write_str("pass"),
            Expectation::Fail(c) => write!(f, "fail {c}"),
        }
    }
}

/// One persisted fuzz scenario.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// The originating fuzz seed (0 for hand-written cases).
    pub seed: u64,
    /// The fabric.
    pub spec: CgraSpec,
    /// The `max_ii` the replay sweeps to.
    pub max_ii: u32,
    /// What replay must observe.
    pub expect: Expectation,
    /// Free-form provenance (original violation, why the case is hard).
    pub note: String,
    /// Shrink steps that produced it (0 for hand-written cases).
    pub shrink_steps: u32,
    /// The kernel.
    pub dfg: Dfg,
}

/// Error from [`Artifact::from_text`].
#[derive(Clone, Debug)]
pub struct ParseArtifactError(String);

impl fmt::Display for ParseArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fuzz artifact: {}", self.0)
    }
}

impl Error for ParseArtifactError {}

impl Artifact {
    /// Serialises to the v1 text format. Byte-stable: the same artifact
    /// always renders identically (corpus files are diffable).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "# rewire-fuzz artifact v1");
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(s, "arch {}", self.spec);
        let _ = writeln!(s, "max-ii {}", self.max_ii);
        let _ = writeln!(s, "expect {}", self.expect);
        if !self.note.is_empty() {
            let _ = writeln!(s, "note {}", self.note);
        }
        let _ = writeln!(s, "shrink-steps {}", self.shrink_steps);
        s.push_str(&self.dfg.to_text());
        s
    }

    /// Parses the v1 text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArtifactError`] on a malformed header, unknown key,
    /// missing mandatory field, or unparsable embedded DFG.
    pub fn from_text(text: &str) -> Result<Self, ParseArtifactError> {
        let err = |m: String| ParseArtifactError(m);
        let mut seed = None;
        let mut spec = None;
        let mut max_ii = None;
        let mut expect = None;
        let mut note = String::new();
        let mut shrink_steps = 0u32;
        let mut dfg_start = None;

        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if trimmed.starts_with("dfg ") {
                dfg_start = Some(i);
                break;
            }
            let (key, value) = trimmed
                .split_once(' ')
                .ok_or_else(|| err(format!("line {}: expected `key value`", i + 1)))?;
            let value = value.trim();
            match key {
                "seed" => {
                    seed = Some(
                        value
                            .parse()
                            .map_err(|_| err(format!("bad seed `{value}`")))?,
                    )
                }
                "arch" => spec = Some(value.parse::<CgraSpec>().map_err(|e| err(e.to_string()))?),
                "max-ii" => {
                    max_ii = Some(
                        value
                            .parse()
                            .map_err(|_| err(format!("bad max-ii `{value}`")))?,
                    )
                }
                "expect" => {
                    expect = Some(match value {
                        "pass" => Expectation::Pass,
                        other => {
                            let check = other
                                .strip_prefix("fail ")
                                .and_then(CheckKind::from_label)
                                .ok_or_else(|| err(format!("bad expect `{other}`")))?;
                            Expectation::Fail(check)
                        }
                    })
                }
                "note" => note = value.to_string(),
                "shrink-steps" => {
                    shrink_steps = value
                        .parse()
                        .map_err(|_| err(format!("bad shrink-steps `{value}`")))?
                }
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        }

        let dfg_start = dfg_start.ok_or_else(|| err("missing embedded DFG".into()))?;
        let dfg_text: String = text.lines().skip(dfg_start).collect::<Vec<_>>().join("\n");
        let dfg = Dfg::from_text(&dfg_text).map_err(|e| err(format!("embedded DFG: {e}")))?;

        Ok(Artifact {
            seed: seed.ok_or_else(|| err("missing `seed`".into()))?,
            spec: spec.ok_or_else(|| err("missing `arch`".into()))?,
            max_ii: max_ii.ok_or_else(|| err("missing `max-ii`".into()))?,
            expect: expect.ok_or_else(|| err("missing `expect`".into()))?,
            note,
            shrink_steps,
            dfg,
        })
    }

    /// Canonical corpus file name: `seed<NNNN>-<check|pass>.dfg`.
    pub fn file_name(&self) -> String {
        match self.expect {
            Expectation::Pass => format!("seed{:04}-pass.dfg", self.seed),
            Expectation::Fail(c) => format!("seed{:04}-{}.dfg", self.seed, c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewire_arch::OpKind;

    fn sample() -> Artifact {
        let mut dfg = Dfg::new("mini");
        let a = dfg.add_node("a", OpKind::Load);
        let b = dfg.add_node("b", OpKind::Add);
        dfg.add_edge(a, b, 0).unwrap();
        dfg.add_edge(b, b, 2).unwrap();
        Artifact {
            seed: 42,
            spec: "3x3 regs=1 banks=2 memcols=0".parse().unwrap(),
            max_ii: 6,
            expect: Expectation::Pass,
            note: "register-pressure hard case".into(),
            shrink_steps: 9,
            dfg,
        }
    }

    #[test]
    fn text_round_trips() {
        let a = sample();
        let parsed = Artifact::from_text(&a.to_text()).unwrap();
        assert_eq!(parsed.seed, a.seed);
        assert_eq!(parsed.spec, a.spec);
        assert_eq!(parsed.max_ii, a.max_ii);
        assert_eq!(parsed.expect, a.expect);
        assert_eq!(parsed.note, a.note);
        assert_eq!(parsed.shrink_steps, a.shrink_steps);
        assert_eq!(parsed.dfg.to_text(), a.dfg.to_text());
        // Re-serialisation is byte-stable.
        assert_eq!(parsed.to_text(), a.to_text());
    }

    #[test]
    fn fail_expectation_round_trips() {
        let mut a = sample();
        a.expect = Expectation::Fail(CheckKind::Semantic);
        let parsed = Artifact::from_text(&a.to_text()).unwrap();
        assert_eq!(parsed.expect, Expectation::Fail(CheckKind::Semantic));
        assert_eq!(parsed.file_name(), "seed0042-semantic.dfg");
        assert_eq!(sample().file_name(), "seed0042-pass.dfg");
    }

    #[test]
    fn comments_and_blanks_are_tolerated() {
        let text = "# header comment\n\nseed 1\narch 2x2 regs=1\n\nmax-ii 4\nexpect pass\ndfg t\nnode x add\n";
        let a = Artifact::from_text(text).unwrap();
        assert_eq!(a.seed, 1);
        assert_eq!(a.dfg.num_nodes(), 1);
        assert_eq!(a.shrink_steps, 0);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",                                                                  // empty
            "seed 1\n",                                                          // no dfg
            "seed x\narch 2x2\nmax-ii 4\nexpect pass\ndfg t\nnode x add\n",      // bad seed
            "seed 1\narch 2x2\nmax-ii 4\nexpect nope\ndfg t\nnode x add\n",      // bad expect
            "seed 1\narch 2x2\nmax-ii 4\nexpect pass\nwat\ndfg t\nnode x add\n", // bad key line
            "seed 1\nmax-ii 4\nexpect pass\ndfg t\nnode x add\n",                // missing arch
            "seed 1\narch 2x2\nmax-ii 4\nexpect pass\ndfg t\nnode x wat\n",      // bad dfg op
        ] {
            assert!(Artifact::from_text(bad).is_err(), "accepted: {bad:?}");
        }
        let e = Artifact::from_text("").unwrap_err();
        assert!(e.to_string().contains("bad fuzz artifact"));
    }
}
