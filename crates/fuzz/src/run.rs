//! The fuzz loop: scenario → four mappers (plus the gated exact SAT
//! oracle) → oracle stack → (on failure) shrink → artifact.
//!
//! Determinism contract: the same seed produces a byte-identical scenario,
//! mapper outcomes, violations and shrink trace, because every stochastic
//! loop in the mappers is bounded by *deterministic caps* (the same
//! configuration `tests/engine_determinism.rs` pins) under a wall-clock
//! budget generous enough never to bind. `--budget-ms` is a safety net for
//! pathological scenarios, not the intended stopping rule.

use crate::artifact::{Artifact, Expectation};
use crate::oracle::{run_oracle, CheckKind, CrossMapperPolicy, MapperRun, OracleConfig, Violation};
use crate::scenario::Scenario;
use crate::shrink::{shrink, ShrinkResult};
use rewire_arch::random::CgraSpec;
use rewire_arch::Cgra;
use rewire_bench::parallel_map;
use rewire_core::{RewireConfig, RewireMapper};
use rewire_dfg::Dfg;
use rewire_mappers::{
    ExactSatMapper, ExhaustiveMapper, MapLimits, Mapper, PathFinderConfig, PathFinderMapper,
    SaConfig, SaMapper,
};
use rewire_obs as obs;
use std::time::Duration;

/// Knobs of one fuzz campaign.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Per-II wall-clock safety net per mapper, in milliseconds. The
    /// deterministic iteration caps are sized to finish far below it.
    pub budget_ms: u64,
    /// Sweep `mii..=mii + extra_ii` (bounds the differential comparison
    /// and the cross-mapper "full sweep" criterion).
    pub extra_ii: u32,
    /// Iterations simulated by the semantic check.
    pub sim_iterations: u32,
    /// Maximum candidate evaluations the shrinker may spend per failure.
    pub shrink_budget: u32,
    /// Per-II wall-clock budget for the exact SAT oracle, in
    /// milliseconds. `0` (the default) disables the layer entirely: only
    /// the four differential mappers run and no `exact_verdict` check
    /// applies. When enabled, size it generously — the SAT backend's
    /// deterministic conflict budget is meant to bind first, so verdicts
    /// replay identically across machines.
    pub exact_budget_ms: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            budget_ms: 200,
            extra_ii: 3,
            sim_iterations: 8,
            shrink_budget: 300,
            exact_budget_ms: 0,
        }
    }
}

/// Search-tree node cap for the exhaustive oracle: deterministic
/// truncation instead of the wall-clock deadline, so outcomes replay
/// byte-identically. The oracle reports its search-node total, letting
/// the cross-mapper check distrust failures whenever the total reached
/// this cap.
pub const EXHAUSTIVE_SEARCH_CAP: u64 = 10_000;

/// The four mappers of the differential stack, every stochastic loop
/// bounded by deterministic caps (the `tests/engine_determinism.rs`
/// configuration) so outcomes replay byte-identically.
pub fn differential_mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(RewireMapper::with_config(RewireConfig {
            max_cluster_attempts: 6,
            max_restarts_per_ii: 1,
            ..Default::default()
        })),
        Box::new(PathFinderMapper::with_config(PathFinderConfig {
            max_iterations_per_ii: 60,
            max_full_evals: 6,
            ..Default::default()
        })),
        Box::new(SaMapper::with_config(SaConfig {
            max_iterations_per_ii: 150,
            max_restarts_per_ii: 1,
            ..Default::default()
        })),
        Box::new(ExhaustiveMapper::new().with_max_search_nodes(EXHAUSTIVE_SEARCH_CAP)),
    ]
}

/// Runs all four mappers on one instance and applies the oracle stack.
pub fn evaluate(
    dfg: &Dfg,
    cgra: &Cgra,
    mapper_seed: u64,
    input_seed: u64,
    cfg: &FuzzConfig,
) -> (Vec<MapperRun>, Vec<Violation>) {
    let mii = dfg.mii(cgra);
    let max_ii = mii.map_or(1, |m| m + cfg.extra_ii);
    let limits = MapLimits::fast()
        .with_seed(mapper_seed)
        .with_ii_time_budget(Duration::from_millis(cfg.budget_ms))
        .with_max_ii(max_ii);
    let mut runs: Vec<MapperRun> = differential_mappers()
        .iter()
        .map(|m| MapperRun {
            name: m.name().to_string(),
            outcome: m.map(dfg, cgra, &limits),
        })
        .collect();
    // The exact SAT oracle is a gated fifth run, not a fifth differential
    // mapper: its verdicts feed the `exact_verdict` layer (and its own
    // mappings go through the structural/semantic/MII layers like anyone
    // else's), but the four-mapper differential contract stays pinned
    // when the layer is off.
    if cfg.exact_budget_ms > 0 {
        let exact_limits = limits.with_ii_time_budget(Duration::from_millis(cfg.exact_budget_ms));
        let exact = ExactSatMapper::new();
        runs.push(MapperRun {
            name: exact.name().to_string(),
            outcome: exact.map(dfg, cgra, &exact_limits),
        });
    }
    let oracle_cfg = OracleConfig {
        mii,
        max_ii,
        input_seed,
        sim_iterations: cfg.sim_iterations,
        // The workspace's exhaustive mapper routes greedily, so its
        // failures are not proofs: keep `exhaustive_complete` off and run
        // only the always-sound early-bail sub-check on real scenarios.
        cross_mapper: CrossMapperPolicy {
            exhaustive_complete: false,
            exhaustive_search_cap: Some(EXHAUSTIVE_SEARCH_CAP),
        },
    };
    let violations = run_oracle(dfg, cgra, &runs, &oracle_cfg);
    (runs, violations)
}

/// Everything one seed produced.
#[derive(Clone, Debug)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Stable scenario summary.
    pub summary: String,
    /// Per-mapper stable outcome lines (no wall-clock content).
    pub outcomes: Vec<String>,
    /// Oracle violations on the *original* scenario.
    pub violations: Vec<Violation>,
    /// Shrink result, when violations occurred.
    pub shrink: Option<ShrinkResult>,
    /// The minimal reproducer artifact, when violations occurred.
    pub artifact: Option<Artifact>,
}

impl SeedReport {
    /// Whether the seed passed the whole stack.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic multi-line rendering (what the determinism test
    /// compares byte for byte): scenario, outcomes, violations, shrink
    /// trace — never timing.
    pub fn render(&self) -> String {
        let mut s = format!("seed {}: {}\n", self.seed, self.summary);
        for o in &self.outcomes {
            s.push_str("  ");
            s.push_str(o);
            s.push('\n');
        }
        for v in &self.violations {
            s.push_str(&format!("  VIOLATION {v}\n"));
        }
        if let Some(sh) = &self.shrink {
            s.push_str(&crate::shrink::render_trace(sh));
        }
        s
    }
}

/// Stable one-line description of a mapper outcome (deliberately excludes
/// elapsed time, the only nondeterministic field; the exact oracle's
/// verdicts appear as labels only, since `Unknown` conflict counts depend
/// on where a wall-clock deadline lands).
fn outcome_line(run: &MapperRun) -> String {
    let st = &run.outcome.stats;
    let mut line = match st.achieved_ii {
        Some(ii) => format!(
            "{}: II {ii} (MII {}) after {} IIs, {} iterations",
            run.name, st.mii, st.iis_explored, st.remap_iterations
        ),
        None => format!(
            "{}: failed (MII {}) after {} IIs, {} iterations",
            run.name, st.mii, st.iis_explored, st.remap_iterations
        ),
    };
    if !st.verdicts.is_empty() {
        let vs: Vec<String> = st
            .verdicts
            .iter()
            .map(|(ii, v)| format!("{ii}:{}", v.label()))
            .collect();
        line.push_str(&format!(" [{}]", vs.join(" ")));
    }
    line
}

/// Fuzzes one seed end to end. Records metrics under the `fuzz` scope of
/// the global registry (`fuzz.scenarios`, `fuzz.violations`,
/// `fuzz.checks.<kind>`, `fuzz.shrink_steps`, plus scenario-shape
/// histograms).
pub fn fuzz_one(seed: u64, cfg: &FuzzConfig) -> SeedReport {
    let _scope = obs::scope("fuzz");
    let scenario = Scenario::generate(seed);
    obs::counter("fuzz.scenarios").add(1);
    obs::histogram("fuzz.dfg_nodes").record(scenario.dfg.num_nodes() as u64);
    obs::histogram("fuzz.fabric_pes").record(scenario.cgra.num_pes() as u64);

    let (runs, violations) = evaluate(
        &scenario.dfg,
        &scenario.cgra,
        scenario.mapper_seed(),
        scenario.input_seed(),
        cfg,
    );
    for r in &runs {
        if r.outcome.stats.success() {
            obs::counter("fuzz.mapped").add(1);
        } else {
            obs::counter("fuzz.gave_up").add(1);
        }
    }
    for kind in CheckKind::all() {
        let fired = violations.iter().filter(|v| v.check == kind).count() as u64;
        obs::counter(&format!("fuzz.checks.{kind}")).add(fired);
    }

    let (shrink_result, artifact) = if violations.is_empty() {
        (None, None)
    } else {
        obs::counter("fuzz.violations").add(violations.len() as u64);
        let mut still_fails = |d: &Dfg, s: &CgraSpec| {
            let cgra = s.build().expect("shrink candidates build");
            let (_, vs) = evaluate(d, &cgra, scenario.mapper_seed(), scenario.input_seed(), cfg);
            !vs.is_empty()
        };
        let result = shrink(
            &scenario.dfg,
            &scenario.spec,
            &mut still_fails,
            cfg.shrink_budget,
        );
        obs::counter("fuzz.shrink_steps").add(result.steps.len() as u64);
        // Re-derive the violation on the minimal scenario for the note.
        let min_cgra = result.spec.build().expect("minimal spec builds");
        let (_, min_violations) = evaluate(
            &result.dfg,
            &min_cgra,
            scenario.mapper_seed(),
            scenario.input_seed(),
            cfg,
        );
        let lead = min_violations.first().unwrap_or(&violations[0]).clone();
        let max_ii = result.dfg.mii(&min_cgra).map_or(1, |m| m + cfg.extra_ii);
        let artifact = Artifact {
            seed,
            spec: result.spec.clone(),
            max_ii,
            expect: Expectation::Fail(lead.check),
            note: lead.to_string(),
            shrink_steps: result.steps.len() as u32,
            dfg: result.dfg.clone(),
        };
        (Some(result), Some(artifact))
    };

    SeedReport {
        seed,
        summary: scenario.summary(),
        outcomes: runs.iter().map(outcome_line).collect(),
        violations,
        shrink: shrink_result,
        artifact,
    }
}

/// Fuzzes a seed range with `jobs` worker threads (reusing the bench
/// harness fan-out; reports come back in seed order regardless of
/// scheduling).
pub fn fuzz_range(seeds: std::ops::Range<u64>, cfg: &FuzzConfig, jobs: usize) -> Vec<SeedReport> {
    let seeds: Vec<u64> = seeds.collect();
    parallel_map(&seeds, jobs, |&seed| fuzz_one(seed, cfg))
}

/// Replays a persisted artifact: rebuilds the scenario it embeds, runs
/// the whole stack, and checks the observation against the artifact's
/// expectation. Returns an error message on mismatch.
///
/// # Errors
///
/// `Err(reason)` when an `expect pass` artifact produces any violation,
/// or an `expect fail <check>` artifact no longer reproduces one of the
/// named check.
pub fn replay(artifact: &Artifact, cfg: &FuzzConfig) -> Result<Vec<Violation>, String> {
    let cgra = artifact
        .spec
        .build()
        .map_err(|e| format!("artifact fabric does not build: {e}"))?;
    let scenario = Scenario::from_parts(artifact.seed, artifact.dfg.clone(), artifact.spec.clone());
    let mut replay_cfg = *cfg;
    // The artifact pins its own sweep depth.
    replay_cfg.extra_ii = artifact
        .max_ii
        .saturating_sub(artifact.dfg.mii(&cgra).unwrap_or(artifact.max_ii));
    let (_, violations) = evaluate(
        &artifact.dfg,
        &cgra,
        scenario.mapper_seed(),
        scenario.input_seed(),
        &replay_cfg,
    );
    match artifact.expect {
        Expectation::Pass => {
            if violations.is_empty() {
                Ok(violations)
            } else {
                Err(format!(
                    "expected a clean replay but got {} violation(s): {}",
                    violations.len(),
                    violations[0]
                ))
            }
        }
        Expectation::Fail(check) => {
            if violations.iter().any(|v| v.check == check) {
                Ok(violations)
            } else {
                Err(format!(
                    "expected a {check} violation but the replay produced {}",
                    if violations.is_empty() {
                        "none".to_string()
                    } else {
                        format!("only: {}", violations[0])
                    }
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FuzzConfig {
        FuzzConfig {
            budget_ms: 10_000, // caps bind, never the clock
            extra_ii: 2,
            sim_iterations: 6,
            shrink_budget: 60,
            exact_budget_ms: 0,
        }
    }

    #[test]
    fn a_few_seeds_run_clean() {
        for seed in 0..4 {
            let r = fuzz_one(seed, &quick());
            assert!(r.clean(), "seed {seed}:\n{}", r.render());
            assert_eq!(r.outcomes.len(), 4, "all four mappers ran");
            assert!(r.shrink.is_none());
            assert!(r.artifact.is_none());
        }
    }

    #[test]
    fn reports_render_deterministically() {
        let a = fuzz_one(11, &quick());
        let b = fuzz_one(11, &quick());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn exact_oracle_layer_runs_clean_and_deterministic() {
        let cfg = FuzzConfig {
            exact_budget_ms: 20_000, // conflict budget binds, never the clock
            ..quick()
        };
        for seed in 0..3 {
            let a = fuzz_one(seed, &cfg);
            assert!(a.clean(), "seed {seed}:\n{}", a.render());
            assert_eq!(a.outcomes.len(), 5, "the exact oracle joined the run");
            assert!(
                a.outcomes[4].starts_with("Exact:"),
                "gated run comes last: {}",
                a.outcomes[4]
            );
            let b = fuzz_one(seed, &cfg);
            assert_eq!(a.render(), b.render(), "seed {seed} diverged");
        }
    }

    #[test]
    fn exact_oracle_layer_is_off_by_default() {
        assert_eq!(FuzzConfig::default().exact_budget_ms, 0);
        let r = fuzz_one(0, &quick());
        assert_eq!(r.outcomes.len(), 4);
        assert!(!r.outcomes.iter().any(|o| o.starts_with("Exact:")));
    }

    #[test]
    fn range_matches_individual_runs_regardless_of_jobs() {
        let cfg = quick();
        let serial = fuzz_range(0..6, &cfg, 1);
        let parallel = fuzz_range(0..6, &cfg, 3);
        assert_eq!(serial.len(), 6);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.render(), p.render());
        }
    }

    #[test]
    fn replay_round_trips_a_clean_scenario_as_artifact() {
        let cfg = quick();
        let scenario = Scenario::generate(2);
        let mii = scenario.dfg.mii(&scenario.cgra);
        let artifact = Artifact {
            seed: 2,
            spec: scenario.spec.clone(),
            max_ii: mii.map_or(1, |m| m + cfg.extra_ii),
            expect: Expectation::Pass,
            note: "round-trip test".into(),
            shrink_steps: 0,
            dfg: scenario.dfg.clone(),
        };
        let parsed = Artifact::from_text(&artifact.to_text()).unwrap();
        replay(&parsed, &cfg).expect("clean scenario replays clean");
    }

    #[test]
    fn replay_flags_a_wrong_expectation() {
        let cfg = quick();
        let scenario = Scenario::generate(2);
        let artifact = Artifact {
            seed: 2,
            spec: scenario.spec.clone(),
            max_ii: 4,
            expect: Expectation::Fail(CheckKind::Semantic),
            note: String::new(),
            shrink_steps: 0,
            dfg: scenario.dfg.clone(),
        };
        let err = replay(&artifact, &cfg).unwrap_err();
        assert!(err.contains("expected a semantic violation"), "{err}");
    }
}
