//! End-to-end exercise of `rewire-doctor`: run real mappers on a
//! fuzz-corpus kernel, capture every observability artefact (JSONL trace,
//! metrics snapshot, flight log, Chrome trace), then spawn the actual
//! binary on those files and check the diagnosis.
//!
//! One `#[test]` drives both scenarios because the flight recorder and
//! Chrome collector are process-global: parallel test threads would
//! interleave their streams.

use rewire_fuzz::Artifact;
use rewire_mappers::engine::{JsonlTrace, SharedSink};
use rewire_mappers::{MapLimits, Mapper, PathFinderConfig, PathFinderMapper};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

fn corpus_artifact(name: &str) -> Artifact {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../fuzz/corpus")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read corpus artifact {}: {e}", path.display()));
    Artifact::from_text(&text).expect("corpus artifact parses")
}

fn out_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rewire-doctor-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn doctor(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rewire-doctor"))
        .args(args)
        .output()
        .expect("spawn rewire-doctor");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A PF* starved enough that the fan-out-hub corpus kernel cannot be
/// routed at its MII of 1 (the artifact itself allows II up to 5; capping
/// `max_ii` at the MII forces the failure deterministically).
fn starved_pf() -> PathFinderMapper {
    PathFinderMapper::with_config(PathFinderConfig {
        max_iterations_per_ii: 60,
        max_full_evals: 4,
        ..Default::default()
    })
}

#[test]
fn doctor_diagnoses_corpus_failure_and_deadline_capped_run() {
    let dir = out_dir();
    let trace_path = dir.join("trace.jsonl");
    let metrics_path = dir.join("metrics.json");
    let flight_path = dir.join("flight.json");
    let chrome_path = dir.join("chrome.json");

    let artifact = corpus_artifact("seed0004-pass.dfg");
    let cgra = artifact.spec.build().expect("corpus fabric builds");
    let mii = artifact.dfg.mii(&cgra).expect("corpus kernel has an MII");

    rewire_obs::flight().enable(0);
    rewire_obs::flight().reset();
    rewire_obs::chrome().enable(0);
    rewire_obs::chrome().reset();

    {
        let mut sink = SharedSink::new(JsonlTrace::create(&trace_path).expect("create trace file"));

        // Scenario 1 — a fuzz-corpus failure: the fan-out hub needs II
        // above its MII, so capping max_ii at the MII makes the starved
        // PF* give up after genuinely attempting (and failing to route
        // at) that II.
        let fail_limits = MapLimits::fast()
            .with_max_ii(mii)
            .with_ii_time_budget(Duration::from_secs(30));
        let out = starved_pf().map_with_events(&artifact.dfg, &cgra, &fail_limits, &mut sink);
        assert!(
            out.mapping.is_none(),
            "scenario 1 must fail (mapped at II {:?})",
            out.stats.achieved_ii
        );

        // Scenario 2 — a deadline-capped run: a zero total budget makes
        // the engine give up before its first attempt with the
        // `total_budget` reason.
        let capped_limits = MapLimits::fast()
            .with_total_time_budget(Duration::from_nanos(1))
            .with_seed(1);
        let out = starved_pf().map_with_events(&artifact.dfg, &cgra, &capped_limits, &mut sink);
        assert!(out.mapping.is_none(), "scenario 2 must hit the budget");

        use rewire_mappers::engine::EventSink as _;
        sink.finish();
    }

    let flight_log = rewire_obs::flight().snapshot();
    assert!(
        !flight_log.events.is_empty(),
        "the failed run must leave flight events"
    );
    std::fs::write(&flight_path, flight_log.to_json()).unwrap();
    std::fs::write(
        &chrome_path,
        rewire_obs::chrome().export_json(Some(&flight_log)),
    )
    .unwrap();
    std::fs::write(&metrics_path, rewire_obs::metrics().snapshot().to_json()).unwrap();
    rewire_obs::flight().disable();
    rewire_obs::chrome().disable();

    // The doctor turns the three artefacts into a non-empty diagnosis
    // naming both failures.
    let (ok, stdout, stderr) = doctor(&[
        "--trace",
        trace_path.to_str().unwrap(),
        "--metrics",
        metrics_path.to_str().unwrap(),
        "--flight",
        flight_path.to_str().unwrap(),
    ]);
    assert!(ok, "doctor failed: {stderr}");
    assert!(!stdout.trim().is_empty(), "diagnosis must be non-empty");
    assert!(stdout.contains("== II vs MII =="), "{stdout}");
    assert!(
        stdout.contains("FAILED (max_ii_reached)"),
        "scenario 1 failure missing: {stdout}"
    );
    assert!(
        stdout.contains("FAILED (total_budget)"),
        "scenario 2 failure missing: {stdout}"
    );
    assert!(
        stdout.contains("-> ") && stdout.contains("failed"),
        "most-failed edges missing: {stdout}"
    );
    assert!(stdout.contains("== span tree =="), "{stdout}");
    assert!(
        stdout.contains("run"),
        "span tree content missing: {stdout}"
    );

    // The Chrome export from the same runs validates: balanced B/E pairs,
    // monotonic per-thread timestamps.
    let (ok, stdout, stderr) = doctor(&["--validate-chrome", chrome_path.to_str().unwrap()]);
    assert!(ok, "chrome validation failed: {stderr}");
    assert!(stdout.contains("valid chrome trace"), "{stdout}");

    // A corrupted trace is rejected with a non-zero exit.
    let bad_path = dir.join("bad.json");
    std::fs::write(
        &bad_path,
        "{\"traceEvents\":[{\"ph\":\"E\",\"tid\":1,\"ts\":1,\"name\":\"x\"}]}",
    )
    .unwrap();
    let (ok, _, stderr) = doctor(&["--validate-chrome", bad_path.to_str().unwrap()]);
    assert!(!ok, "corrupt trace must fail validation");
    assert!(stderr.contains("without open B"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}
