//! End-to-end check of the `--trace` path: running a fig6 workload through
//! the traced runner with `--jobs` fan-out must produce a JSONL file where
//! every line parses as a flat JSON object with the expected identity and
//! event fields. The workspace is offline (no serde), so the test brings
//! its own minimal JSON parser.

use rewire_bench::{fig6_workloads, run_workloads_traced, MapperKind};
use rewire_mappers::engine::{JsonlTrace, SharedSink};
use std::collections::BTreeMap;

/// A JSON value as far as the trace format needs: flat objects of strings,
/// numbers, and booleans.
#[derive(Debug, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
}

/// Parses one flat JSON object (the only shape `MapEvent::to_json` emits).
/// Returns `None` on any malformed input.
fn parse_flat_object(line: &str) -> Option<BTreeMap<String, Json>> {
    let mut chars = line.chars().peekable();
    let mut out = BTreeMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars>) {
        while chars.next_if(|c| c.is_whitespace()).is_some() {}
    }

    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
        if chars.next()? != '"' {
            return None;
        }
        let mut s = String::new();
        loop {
            match chars.next()? {
                '"' => return Some(s),
                '\\' => match chars.next()? {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    'n' => s.push('\n'),
                    'r' => s.push('\r'),
                    't' => s.push('\t'),
                    'u' => {
                        let hex: String = (0..4).map(|_| chars.next().unwrap_or(' ')).collect();
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        s.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => s.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        if chars.peek() == Some(&'}') {
            chars.next();
            break;
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => Json::Str(parse_string(&mut chars)?),
            't' | 'f' => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(char::is_ascii_alphabetic)).collect();
                match word.as_str() {
                    "true" => Json::Bool(true),
                    "false" => Json::Bool(false),
                    _ => return None,
                }
            }
            _ => {
                let num: String = std::iter::from_fn(|| {
                    chars
                        .next_if(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                })
                .collect();
                Json::Num(num.parse().ok()?)
            }
        };
        out.insert(key, value);
        skip_ws(&mut chars);
        match chars.peek()? {
            ',' => {
                chars.next();
            }
            '}' => {}
            _ => return None,
        }
    }
    skip_ws(&mut chars);
    chars.next().is_none().then_some(out)
}

#[test]
fn fig6_workload_emits_a_parseable_jsonl_trace() {
    // One fig6 workload (4×4/2-reg), truncated to one kernel so the
    // debug-mode test stays fast; all three evaluation mappers, --jobs 2.
    let mut workloads = fig6_workloads();
    workloads.retain(|w| w.label == "4x4 2reg");
    assert_eq!(workloads.len(), 1);
    workloads[0].kernels.truncate(1);
    let kernel_name = workloads[0].kernels[0].name().to_string();

    let path = std::env::temp_dir().join(format!("rewire-trace-{}.jsonl", std::process::id()));
    let sink = SharedSink::new(JsonlTrace::create(&path).expect("create trace file"));
    let rows = run_workloads_traced(
        &workloads,
        &[
            MapperKind::Rewire,
            MapperKind::PathFinderFullBudget,
            MapperKind::Annealing,
        ],
        0.5,
        2,
        Some(sink),
        |_| {},
    );
    assert_eq!(rows.len(), 1);

    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 9,
        "3 mappers × (IiStarted + AttemptFinished + terminal) at minimum, got {}",
        lines.len()
    );

    let mut mappers_seen = std::collections::BTreeSet::new();
    let mut terminals = 0usize;
    for line in &lines {
        let obj =
            parse_flat_object(line).unwrap_or_else(|| panic!("unparseable trace line: {line}"));
        // Identity fields on every line.
        match obj.get("mapper") {
            Some(Json::Str(m)) => {
                mappers_seen.insert(m.clone());
            }
            other => panic!("missing mapper field ({other:?}): {line}"),
        }
        assert_eq!(
            obj.get("kernel"),
            Some(&Json::Str(kernel_name.clone())),
            "{line}"
        );
        assert!(matches!(obj.get("seed"), Some(Json::Num(_))), "{line}");
        let kind = match obj.get("type") {
            Some(Json::Str(k)) => k.clone(),
            other => panic!("missing type field ({other:?}): {line}"),
        };
        match kind.as_str() {
            "ii_started" => assert!(matches!(obj.get("ii"), Some(Json::Num(_))), "{line}"),
            "negotiation_round" => {
                for field in ["ii", "iteration", "ill_nodes", "overuse"] {
                    assert!(matches!(obj.get(field), Some(Json::Num(_))), "{line}");
                }
            }
            "attempt_finished" => {
                assert!(matches!(obj.get("routed"), Some(Json::Bool(_))), "{line}");
                for field in ["ii", "overuse", "iterations", "elapsed_us"] {
                    assert!(matches!(obj.get(field), Some(Json::Num(_))), "{line}");
                }
            }
            "mapped" => {
                terminals += 1;
                for field in ["ii", "iis_explored", "elapsed_us"] {
                    assert!(matches!(obj.get(field), Some(Json::Num(_))), "{line}");
                }
            }
            "gave_up" => {
                terminals += 1;
                assert!(matches!(obj.get("reason"), Some(Json::Str(_))), "{line}");
            }
            other => panic!("unknown event type {other:?}: {line}"),
        }
    }
    assert_eq!(
        mappers_seen.into_iter().collect::<Vec<_>>(),
        vec!["PF*".to_string(), "Rewire".to_string(), "SA".to_string()],
        "every mapper's run reached the shared trace"
    );
    assert_eq!(terminals, 3, "one terminal event per mapper run");
}
