//! End-to-end check of the observability pipeline: a traced + metered
//! bench run must produce a JSONL trace and a metrics snapshot that
//! `rewire-report`'s aggregation turns into a non-empty per-run report
//! with joined counters and a span time breakdown.

use rewire_bench::obs_report::{load_snapshots, parse_trace, render_report};
use rewire_bench::{fig6_workloads, run_workloads_traced, MapperKind};
use rewire_mappers::engine::{Fanout, JsonlTrace, MetricsSink, SharedSink};

#[test]
fn traced_run_aggregates_into_a_report() {
    // One kernel on the 4×4/2-reg fabric keeps the debug-mode test fast.
    let mut workloads = fig6_workloads();
    workloads.retain(|w| w.label == "4x4 2reg");
    assert_eq!(workloads.len(), 1);
    workloads[0].kernels.truncate(1);
    let kernel = workloads[0].kernels[0].name().to_string();

    let path = std::env::temp_dir().join(format!("rewire-obsreport-{}.jsonl", std::process::id()));
    let mut fan = Fanout::default();
    fan.0
        .push(Box::new(JsonlTrace::create(&path).expect("create trace")));
    fan.0.push(Box::new(MetricsSink::new()));
    let rows = run_workloads_traced(
        &workloads,
        &[MapperKind::PathFinderFullBudget],
        0.4,
        1,
        Some(SharedSink::new(fan)),
        |_| {},
    );
    assert_eq!(rows.len(), 1);

    let text = std::fs::read_to_string(&path).expect("trace readable");
    let _ = std::fs::remove_file(&path);
    let runs = parse_trace(&text).expect("trace parses");
    assert_eq!(runs.len(), 1, "one (mapper, kernel, seed) run");
    let run = &runs[0];
    assert_eq!(run.mapper, "PF*");
    assert_eq!(run.kernel, kernel);
    assert!(run.iis_started >= 1);
    assert!(run.attempts >= 1);
    assert!(run.mii >= 1, "first ii_started supplies the MII");

    // The in-process registry snapshot stands in for a `--metrics` file.
    let snap_json = rewire_obs::metrics().snapshot().to_json();
    let snap = load_snapshots(&[("m.json".to_string(), snap_json)]).expect("snapshot parses");
    assert!(
        snap.scopes.contains_key(&run.scope()),
        "engine scoped this run's metrics as {}",
        run.scope()
    );

    let report = render_report(&runs, Some(&snap));
    assert!(report.contains(&kernel), "{report}");
    assert!(report.contains("PF*"), "{report}");
    assert!(report.contains("time breakdown"), "{report}");
    assert!(report.contains("run/attempt"), "{report}");
}
