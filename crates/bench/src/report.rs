//! Table printers and the summary statistics the paper quotes.

use crate::runner::Row;

/// Aggregate statistics over one experiment, mirroring §V-A/§V-B's claims.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Combinations where the first mapper produced a mapping.
    pub mapped: usize,
    /// Combinations where the first mapper hit the theoretical MII.
    pub optimal: usize,
    /// Combinations within MII + 1.
    pub near_optimal: usize,
    /// Total combinations.
    pub total: usize,
    /// Geometric-mean II ratio (other / first) per comparison mapper —
    /// the paper's "performance speedup". Only combinations both mapped
    /// count.
    pub speedup_vs: Vec<(String, f64, usize)>,
    /// Geometric-mean time ratio (other / first) per comparison mapper —
    /// the paper's "compilation time reduction".
    pub time_reduction_vs: Vec<(String, f64, usize)>,
    /// Failures per mapper (name, count).
    pub failures: Vec<(String, usize)>,
}

/// Computes the summary, treating `rows[*].results[0]` as the subject
/// (Rewire in the paper's tables).
pub fn summarize(rows: &[Row]) -> Summary {
    let mut s = Summary {
        total: rows.len(),
        ..Default::default()
    };
    if rows.is_empty() {
        return s;
    }
    let num_mappers = rows[0].results.len();
    let mut fails = vec![0usize; num_mappers];
    let mut speed: Vec<(f64, usize)> = vec![(0.0, 0); num_mappers];
    let mut time: Vec<(f64, usize)> = vec![(0.0, 0); num_mappers];
    for row in rows {
        let subject = &row.results[0];
        if let Some(ii) = subject.achieved_ii {
            s.mapped += 1;
            if ii == row.mii {
                s.optimal += 1;
            }
            if ii <= row.mii + 1 {
                s.near_optimal += 1;
            }
        }
        for (i, r) in row.results.iter().enumerate() {
            if r.achieved_ii.is_none() {
                fails[i] += 1;
            }
            if i == 0 {
                continue;
            }
            if let (Some(a), Some(b)) = (subject.achieved_ii, r.achieved_ii) {
                speed[i].0 += (b as f64 / a as f64).ln();
                speed[i].1 += 1;
            }
            let ta = subject.elapsed.as_secs_f64().max(1e-6);
            let tb = r.elapsed.as_secs_f64().max(1e-6);
            time[i].0 += (tb / ta).ln();
            time[i].1 += 1;
        }
    }
    for (i, r) in rows[0].results.iter().enumerate() {
        s.failures.push((r.mapper.to_string(), fails[i]));
        if i > 0 {
            let (ls, ns) = speed[i];
            let (lt, nt) = time[i];
            s.speedup_vs.push((
                r.mapper.to_string(),
                if ns > 0 {
                    (ls / ns as f64).exp()
                } else {
                    f64::NAN
                },
                ns,
            ));
            s.time_reduction_vs.push((
                r.mapper.to_string(),
                if nt > 0 {
                    (lt / nt as f64).exp()
                } else {
                    f64::NAN
                },
                nt,
            ));
        }
    }
    s
}

fn fmt_ii(ii: Option<u32>) -> String {
    ii.map_or("-".into(), |x| x.to_string())
}

/// Prints a Fig-5-style quality table (II per mapper, MII reference).
pub fn print_fig5(rows: &[Row]) {
    let mut config = "";
    for row in rows {
        if row.config != config {
            config = row.config;
            println!("\n== Fig 5: {} ==", config);
            print!("{:<14} {:>4}", "kernel", "MII");
            for r in &row.results {
                print!(" {:>7}", r.mapper);
            }
            println!();
        }
        print!("{:<14} {:>4}", row.kernel, row.mii);
        for r in &row.results {
            print!(" {:>7}", fmt_ii(r.achieved_ii));
        }
        println!();
    }
    let s = summarize(rows);
    println!(
        "\nRewire: mapped {}/{}, optimal {} / near-optimal {} (gap ≤ 1)",
        s.mapped, s.total, s.optimal, s.near_optimal
    );
    for (name, ratio, n) in &s.speedup_vs {
        println!("performance speedup vs {name}: {ratio:.2}x over {n} common combinations");
    }
    for (name, fails) in &s.failures {
        println!("{name}: {fails} failures");
    }
}

/// Prints a Fig-6-style compilation-time table (seconds, log-scale in the
/// paper; raw numbers here).
pub fn print_fig6(rows: &[Row]) {
    let mut config = "";
    for row in rows {
        if row.config != config {
            config = row.config;
            println!("\n== Fig 6: {} (compilation time, s) ==", config);
            print!("{:<14}", "kernel");
            for r in &row.results {
                print!(" {:>9}", r.mapper);
            }
            println!();
        }
        print!("{:<14}", row.kernel);
        for r in &row.results {
            print!(" {:>9.2}", r.elapsed.as_secs_f64());
        }
        println!();
    }
    let s = summarize(rows);
    for (name, ratio, n) in &s.time_reduction_vs {
        println!("compilation time reduction vs {name}: {ratio:.2}x over {n} combinations");
    }
}

/// Prints Table I: average single-node remapping iterations per explored II
/// for the baseline mappers.
pub fn print_table1(rows: &[Row]) {
    let mut config = "";
    for row in rows {
        if row.config != config {
            config = row.config;
            println!("\n== Table I: {} (remapping iterations per II) ==", config);
            print!("{:<14}", "kernel");
            for r in &row.results {
                print!(" {:>9}", r.mapper);
            }
            println!();
        }
        print!("{:<14}", row.kernel);
        for r in &row.results {
            print!(" {:>9.0}", r.iterations_per_ii);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::MapperResult;
    use std::time::Duration;

    fn row(mii: u32, subject: Option<u32>, other: Option<u32>) -> Row {
        Row {
            config: "test",
            kernel: "k".into(),
            mii,
            results: vec![
                MapperResult {
                    mapper: "Rewire",
                    achieved_ii: subject,
                    elapsed: Duration::from_secs(1),
                    iterations_per_ii: 5.0,
                },
                MapperResult {
                    mapper: "PF*",
                    achieved_ii: other,
                    elapsed: Duration::from_secs(4),
                    iterations_per_ii: 300.0,
                },
            ],
        }
    }

    #[test]
    fn summary_counts_optimal_and_near_optimal() {
        let rows = vec![
            row(3, Some(3), Some(6)),
            row(3, Some(4), Some(4)),
            row(3, None, Some(5)),
        ];
        let s = summarize(&rows);
        assert_eq!(s.mapped, 2);
        assert_eq!(s.optimal, 1);
        assert_eq!(s.near_optimal, 2);
        assert_eq!(s.total, 3);
    }

    #[test]
    fn summary_speedup_is_geomean_of_ratios() {
        // Ratios 2.0 and 1.0 => geomean sqrt(2).
        let rows = vec![row(3, Some(3), Some(6)), row(3, Some(4), Some(4))];
        let s = summarize(&rows);
        let (_, ratio, n) = &s.speedup_vs[0];
        assert_eq!(*n, 2);
        assert!((ratio - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn summary_time_reduction() {
        let rows = vec![row(3, Some(3), Some(6))];
        let s = summarize(&rows);
        let (_, ratio, _) = &s.time_reduction_vs[0];
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn summary_counts_failures() {
        let rows = vec![row(3, None, Some(5)), row(3, Some(3), None)];
        let s = summarize(&rows);
        assert_eq!(s.failures[0], ("Rewire".to_string(), 1));
        assert_eq!(s.failures[1], ("PF*".to_string(), 1));
    }

    #[test]
    fn empty_rows_are_fine() {
        let s = summarize(&[]);
        assert_eq!(s.total, 0);
    }
}

/// Renders a compact markdown table of one experiment's rows — used by
/// downstream tooling that embeds results in reports.
pub fn to_markdown(rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    let _ = write!(out, "| config | kernel | MII |");
    for r in &rows[0].results {
        let _ = write!(out, " {} |", r.mapper);
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|---|---|");
    for _ in &rows[0].results {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "| {} | {} | {} |", row.config, row.kernel, row.mii);
        for r in &row.results {
            let _ = write!(
                out,
                " {} |",
                r.achieved_ii.map_or("-".into(), |ii| ii.to_string())
            );
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod markdown_tests {
    use super::*;
    use crate::runner::MapperResult;
    use std::time::Duration;

    #[test]
    fn markdown_table_shape() {
        let rows = vec![Row {
            config: "4x4 4reg",
            kernel: "fir".into(),
            mii: 3,
            results: vec![MapperResult {
                mapper: "Rewire",
                achieved_ii: Some(3),
                elapsed: Duration::from_millis(10),
                iterations_per_ii: 2.0,
            }],
        }];
        let md = to_markdown(&rows);
        assert!(md.starts_with("| config | kernel | MII | Rewire |"));
        assert!(md.contains("| 4x4 4reg | fir | 3 | 3 |"));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    fn empty_markdown_is_empty() {
        assert!(to_markdown(&[]).is_empty());
    }
}
