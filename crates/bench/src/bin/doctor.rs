//! `rewire-doctor` — diagnoses a mapping run from its observability
//! artefacts.
//!
//! Reads whatever the run left behind — the JSONL `MapEvent` trace
//! (`--trace`), metrics snapshots (`--metrics`, repeatable), and the
//! flight-recorder decision log (`--flight`) — and prints a diagnosis:
//! II-vs-MII gap per run with failures first, the most-failed DFG edges,
//! the top contended resources with an ASCII fabric heatmap, the span-tree
//! time breakdown, and the flight summary (ring drops, phase heartbeats,
//! detected stalls).
//!
//! `--validate-chrome FILE` instead validates a Chrome `trace_event`
//! export (written by `--chrome-trace`): well-formed JSON, balanced
//! `B`/`E` pairs in stack order per thread, monotonic per-thread
//! timestamps. CI runs this against the fig5 smoke trace.
//!
//! Usage:
//!   rewire-doctor [--trace FILE] [--metrics FILE ...] [--flight FILE] [--top K]
//!   rewire-doctor --validate-chrome FILE
//!
//! Exit status: 0 = diagnosis printed / trace valid, 1 = malformed input
//! or invalid trace, 2 = usage error.

use rewire_bench::doctor::{diagnose, parse_flight, validate_chrome, FlightData};
use rewire_bench::obs_report::{load_snapshots, parse_trace, RunSummary};
use rewire_obs::Snapshot;
use std::process::ExitCode;

struct Args {
    trace: Option<String>,
    metrics: Vec<String>,
    flight: Option<String>,
    validate_chrome: Option<String>,
    top: usize,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args {
        trace: None,
        metrics: Vec::new(),
        flight: None,
        validate_chrome: None,
        top: 10,
    };
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a file path"))
        };
        if arg == "--trace" {
            parsed.trace = Some(take("--trace")?);
        } else if let Some(v) = arg.strip_prefix("--trace=") {
            parsed.trace = Some(v.to_string());
        } else if arg == "--metrics" {
            parsed.metrics.push(take("--metrics")?);
        } else if let Some(v) = arg.strip_prefix("--metrics=") {
            parsed.metrics.push(v.to_string());
        } else if arg == "--flight" {
            parsed.flight = Some(take("--flight")?);
        } else if let Some(v) = arg.strip_prefix("--flight=") {
            parsed.flight = Some(v.to_string());
        } else if arg == "--validate-chrome" {
            parsed.validate_chrome = Some(take("--validate-chrome")?);
        } else if let Some(v) = arg.strip_prefix("--validate-chrome=") {
            parsed.validate_chrome = Some(v.to_string());
        } else if arg == "--top" {
            parsed.top = take("--top")?
                .parse()
                .map_err(|_| "--top needs a positive integer".to_string())?;
        } else if let Some(v) = arg.strip_prefix("--top=") {
            parsed.top = v
                .parse()
                .map_err(|_| "--top needs a positive integer".to_string())?;
        } else {
            return Err(format!("unrecognised argument {arg:?}"));
        }
    }
    if parsed.validate_chrome.is_none()
        && parsed.trace.is_none()
        && parsed.metrics.is_empty()
        && parsed.flight.is_none()
    {
        return Err("nothing to do: give --trace/--metrics/--flight or --validate-chrome".into());
    }
    Ok(parsed)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &Args) -> Result<String, String> {
    if let Some(path) = &args.validate_chrome {
        let summary = validate_chrome(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
        return Ok(format!(
            "{path}: valid chrome trace ({} events, {} span pairs, {} instants)\n",
            summary.events, summary.spans, summary.instants
        ));
    }

    let runs: Vec<RunSummary> = match &args.trace {
        Some(path) => parse_trace(&read(path)?).map_err(|e| format!("{path}: {e}"))?,
        None => Vec::new(),
    };
    let snapshot: Option<Snapshot> = if args.metrics.is_empty() {
        None
    } else {
        let mut texts = Vec::new();
        for path in &args.metrics {
            texts.push((path.clone(), read(path)?));
        }
        Some(load_snapshots(&texts)?)
    };
    let flight: Option<FlightData> = match &args.flight {
        Some(path) => Some(parse_flight(&read(path)?).map_err(|e| format!("{path}: {e}"))?),
        None => None,
    };
    Ok(diagnose(
        &runs,
        snapshot.as_ref(),
        flight.as_ref(),
        args.top,
    ))
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rewire-doctor: {e}");
            eprintln!(
                "usage: rewire-doctor [--trace FILE] [--metrics FILE ...] [--flight FILE] [--top K]"
            );
            eprintln!("       rewire-doctor --validate-chrome FILE");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rewire-doctor: {e}");
            ExitCode::FAILURE
        }
    }
}
