//! Regenerates the MII-tightness study for EXPERIMENTS.md: the exact
//! SAT backend's proven minimal II vs the theoretical MII bound vs the
//! capped deterministic heuristics, on the fig5 4×4 fabrics.
//!
//! The study is fully deterministic (conflict and iteration caps bind,
//! never the wall clock), so this binary takes no budget argument and
//! its output is byte-stable — the golden form is pinned by
//! `tests/mii_tightness.rs`.
//!
//! Usage: `cargo run -p rewire-bench --release --bin mii_tightness`

use rewire_bench::{mii_tightness_rows, render_markdown};

fn main() {
    eprintln!("mii_tightness: exact SAT floor vs MII vs capped heuristics");
    let rows = mii_tightness_rows(|row| {
        eprintln!(
            "  {} / {}: mii={} exact={} {:?}",
            row.fabric,
            row.kernel,
            row.mii,
            row.exact_cell(),
            row.heuristics
        );
    });
    print!("{}", render_markdown(&rows));
}
