//! Runs the complete reproduction (Fig 5, Fig 6, Table I) in one go and
//! prints every table plus the Rewire verification-success statistic.
//!
//! Usage: `cargo run -p rewire-bench --release --bin repro [seconds_per_ii] [--jobs N] [--trace FILE] [--metrics FILE] [--kernels a,b]`

use rewire_bench::{
    fig5_workloads, fig6_workloads, parallel_map, parse_cli, print_fig5, print_fig6, print_table1,
    run_workloads_traced, table1_workloads, MapperKind,
};
use rewire_core::RewireMapper;
use rewire_mappers::MapLimits;
use std::time::Duration;

fn main() {
    let args = parse_cli(2.0);
    let (secs, jobs) = (args.seconds_per_ii, args.jobs);
    let trace = args.event_sink();
    eprintln!("repro: per-II budget {secs}s per mapper, {jobs} job(s)");

    eprintln!("== running Fig 5 (quality) ==");
    let rows = run_workloads_traced(
        &args.filter_workloads(fig5_workloads()),
        &[
            MapperKind::Rewire,
            MapperKind::PathFinder,
            MapperKind::Annealing,
        ],
        secs,
        jobs,
        trace.clone(),
        |row| eprintln!("  fig5 {} / {}", row.config, row.kernel),
    );
    print_fig5(&rows);

    eprintln!("\n== running Fig 6 (compilation time) ==");
    let rows = run_workloads_traced(
        &args.filter_workloads(fig6_workloads()),
        &[
            MapperKind::Rewire,
            MapperKind::PathFinderFullBudget,
            MapperKind::Annealing,
        ],
        secs,
        jobs,
        trace.clone(),
        |row| eprintln!("  fig6 {} / {}", row.config, row.kernel),
    );
    print_fig6(&rows);

    eprintln!("\n== running Table I (iterations) ==");
    let rows = run_workloads_traced(
        &args.filter_workloads(table1_workloads()),
        &[MapperKind::PathFinder, MapperKind::Annealing],
        secs,
        jobs,
        trace,
        |row| eprintln!("  table1 {} / {}", row.config, row.kernel),
    );
    print_table1(&rows);

    // §IV-D: verification success rate of generated Placement(U). Each
    // kernel's run is independent, so the suite fans out over the worker
    // pool; the merge happens on the main thread in input order.
    eprintln!("\n== measuring Placement(U) verification success rate ==");
    let cgra = rewire_arch::presets::paper_4x4_r4();
    let limits =
        MapLimits::benchmark().with_ii_time_budget(Duration::from_millis((secs * 1000.0) as u64));
    let suite = rewire_dfg::kernels::all();
    let per_kernel = parallel_map(&suite, jobs, |(_, dfg)| {
        RewireMapper::new().map_with_stats(dfg, &cgra, &limits).1
    });
    let mut total = rewire_core::RewireStats::default();
    for rs in &per_kernel {
        total.merge(rs);
    }
    println!(
        "\nPlacement(U) verification success rate: {:.1}% ({} / {})",
        100.0 * total.verification_success_rate(),
        total.verification_successes,
        total.verifications
    );
    println!(
        "propagation tuples generated: {} across {} cluster attempts",
        total.tuples_generated, total.clusters_attempted
    );
    args.write_metrics();
}
