//! Runs the complete reproduction (Fig 5, Fig 6, Table I) in one go and
//! prints every table plus the Rewire verification-success statistic.
//!
//! Usage: `cargo run -p rewire-bench --release --bin repro [seconds_per_ii]`

use rewire_bench::{
    fig5_workloads, fig6_workloads, print_fig5, print_fig6, print_table1, run_workloads,
    table1_workloads, MapperKind,
};
use rewire_core::RewireMapper;
use rewire_mappers::MapLimits;
use std::time::Duration;

fn main() {
    let secs: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);

    eprintln!("== running Fig 5 (quality) ==");
    let rows = run_workloads(
        &fig5_workloads(),
        &[
            MapperKind::Rewire,
            MapperKind::PathFinder,
            MapperKind::Annealing,
        ],
        secs,
        |row| eprintln!("  fig5 {} / {}", row.config, row.kernel),
    );
    print_fig5(&rows);

    eprintln!("\n== running Fig 6 (compilation time) ==");
    let rows = run_workloads(
        &fig6_workloads(),
        &[
            MapperKind::Rewire,
            MapperKind::PathFinderFullBudget,
            MapperKind::Annealing,
        ],
        secs,
        |row| eprintln!("  fig6 {} / {}", row.config, row.kernel),
    );
    print_fig6(&rows);

    eprintln!("\n== running Table I (iterations) ==");
    let rows = run_workloads(
        &table1_workloads(),
        &[MapperKind::PathFinder, MapperKind::Annealing],
        secs,
        |row| eprintln!("  table1 {} / {}", row.config, row.kernel),
    );
    print_table1(&rows);

    // §IV-D: verification success rate of generated Placement(U).
    eprintln!("\n== measuring Placement(U) verification success rate ==");
    let cgra = rewire_arch::presets::paper_4x4_r4();
    let limits =
        MapLimits::benchmark().with_ii_time_budget(Duration::from_millis((secs * 1000.0) as u64));
    let mut total = rewire_core::RewireStats::default();
    for (_, dfg) in rewire_dfg::kernels::all() {
        let (_, rs) = RewireMapper::new().map_with_stats(&dfg, &cgra, &limits);
        total.merge(&rs);
    }
    println!(
        "\nPlacement(U) verification success rate: {:.1}% ({} / {})",
        100.0 * total.verification_success_rate(),
        total.verification_successes,
        total.verifications
    );
    println!(
        "propagation tuples generated: {} across {} cluster attempts",
        total.tuples_generated, total.clusters_attempted
    );
}
