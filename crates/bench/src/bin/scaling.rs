//! The fabric-scaling curve: map time and achieved II as the fabric grows
//! from 4×4 to 64×64 (EXPERIMENTS.md §scaling). Each rung of the ladder
//! maps `fir` plus unrolled variants sized to the fabric, all with the
//! Rewire mapper, and the table reports the distance-oracle tier and heap
//! footprint alongside so the dense→tiered switch at 256 PEs is visible.
//!
//! `--smoke` runs the CI large-fabric gate instead: map a few kernels on
//! the 32×32 mesh, require every one to succeed within the budget, and
//! require the peak `router.distance_table_bytes` gauge to stay under a
//! pinned cap (2 MB — the dense table on 32×32 alone is 4.2 MB, so a
//! regression to the dense tier past [`DENSE_PE_LIMIT`] trips it).
//!
//! Usage: `cargo run -p rewire-bench --release --bin scaling [seconds_per_ii] [--smoke] [--jobs N] [--trace FILE] [--metrics FILE]`
//!
//! [`DENSE_PE_LIMIT`]: rewire_mrrg::DistanceOracle

use rewire_bench::{run_workloads_traced, scaling_workloads, MapperKind, Workload};
use rewire_dfg::kernels;
use rewire_mappers::engine::{JsonlTrace, SharedSink};
use rewire_mrrg::DistanceOracle;
use std::process::exit;

/// Peak summed `router.distance_table_bytes` allowed in smoke mode. The
/// tiered oracle on the 32×32 mesh is ~131 KB per worker thread; the dense
/// table it replaced is 4.2 MB, so even one thread regressing to dense
/// blows through this cap.
const SMOKE_ORACLE_CAP_BYTES: i64 = 2_000_000;

struct Args {
    smoke: bool,
    seconds_per_ii: Option<f64>,
    jobs: usize,
    trace: Option<String>,
    metrics: Option<String>,
}

/// Hand-rolled CLI: the shared `parse_cli` rejects flags it does not know,
/// and `--smoke` is specific to this binary.
fn parse_args(mut args: impl Iterator<Item = String>) -> Args {
    let mut parsed = Args {
        smoke: false,
        seconds_per_ii: None,
        jobs: 1,
        trace: None,
        metrics: None,
    };
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            parsed.smoke = true;
        } else if arg == "--jobs" {
            parsed.jobs = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--jobs needs a positive integer");
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            parsed.jobs = v.parse().expect("--jobs needs a positive integer");
        } else if arg == "--trace" {
            parsed.trace = Some(args.next().expect("--trace needs a file path"));
        } else if let Some(v) = arg.strip_prefix("--trace=") {
            parsed.trace = Some(v.to_string());
        } else if arg == "--metrics" {
            parsed.metrics = Some(args.next().expect("--metrics needs a file path"));
        } else if let Some(v) = arg.strip_prefix("--metrics=") {
            parsed.metrics = Some(v.to_string());
        } else if let Ok(v) = arg.parse::<f64>() {
            parsed.seconds_per_ii = Some(v);
        } else {
            panic!(
                "unrecognised argument {arg:?} (expected [seconds_per_ii] [--smoke] [--jobs N] [--trace FILE] [--metrics FILE])"
            );
        }
    }
    parsed.jobs = parsed.jobs.max(1);
    parsed
}

fn write_metrics(path: &str) {
    let mut json = rewire_obs::metrics().snapshot().to_json();
    json.push('\n');
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write metrics file {path}: {e}"));
    eprintln!("metrics written to {path}");
}

/// Max `router.distance_table_bytes` over every metric scope. Gauges sum
/// per-thread values, so under `--jobs` fan-out this over-counts shared
/// oracles — fine for a cap: the bound is conservative.
fn peak_oracle_bytes() -> Option<i64> {
    rewire_obs::metrics()
        .snapshot()
        .scopes
        .values()
        .filter_map(|s| s.gauges.get("router.distance_table_bytes").copied())
        .max()
}

fn trace_sink(path: Option<&str>) -> Option<SharedSink> {
    path.map(|p| {
        let sink =
            JsonlTrace::create(p).unwrap_or_else(|e| panic!("cannot create trace file {p}: {e}"));
        SharedSink::new(sink)
    })
}

fn run_smoke(secs: f64, jobs: usize, trace: Option<SharedSink>) {
    let by = |n: &str| kernels::by_name(n).unwrap_or_else(|| panic!("unknown kernel {n}"));
    let workload = Workload {
        label: "32x32",
        budget_scale: 1.0,
        cgra: rewire_arch::presets::mesh32(),
        kernels: vec![by("fir"), by("atax"), by("fir(u)")],
    };
    eprintln!("scaling --smoke: 3 kernels on 32x32, {secs}s per II, {jobs} job(s)");
    let rows = run_workloads_traced(
        &[workload],
        &[MapperKind::Rewire],
        secs,
        jobs,
        trace,
        |row| {
            eprintln!(
                "  {} / {}: II {:?} in {:?}",
                row.config, row.kernel, row.results[0].achieved_ii, row.results[0].elapsed
            );
        },
    );
    let failed: Vec<&str> = rows
        .iter()
        .filter(|r| r.results[0].achieved_ii.is_none())
        .map(|r| r.kernel.as_str())
        .collect();
    if !failed.is_empty() {
        eprintln!("scaling --smoke FAILED: no mapping within budget for {failed:?}");
        exit(1);
    }
    let Some(peak) = peak_oracle_bytes() else {
        eprintln!("scaling --smoke FAILED: router.distance_table_bytes gauge never published");
        exit(1);
    };
    if peak > SMOKE_ORACLE_CAP_BYTES {
        eprintln!(
            "scaling --smoke FAILED: peak router.distance_table_bytes = {peak} \
             exceeds the {SMOKE_ORACLE_CAP_BYTES}-byte cap (dense-tier regression?)"
        );
        exit(1);
    }
    eprintln!("scaling --smoke OK: all kernels mapped, peak oracle bytes {peak} <= {SMOKE_ORACLE_CAP_BYTES}");
}

fn run_curve(secs: f64, jobs: usize, trace: Option<SharedSink>) {
    let workloads = scaling_workloads();
    // Fabric-level facts the result rows don't carry: PE count and the
    // distance-oracle tier/footprint for each rung of the ladder.
    let fabric: Vec<(&'static str, usize, &'static str, usize)> = workloads
        .iter()
        .map(|w| {
            let oracle = DistanceOracle::build(&w.cgra);
            let tier = if oracle.is_exact() { "dense" } else { "tiered" };
            (w.label, w.cgra.num_pes(), tier, oracle.heap_bytes())
        })
        .collect();
    eprintln!("scaling: {secs}s per II (scaled per fabric), {jobs} job(s)");
    let rows = run_workloads_traced(
        &workloads,
        &[MapperKind::Rewire],
        secs,
        jobs,
        trace,
        |row| {
            eprintln!(
                "  {} / {}: II {:?} in {:?}",
                row.config, row.kernel, row.results[0].achieved_ii, row.results[0].elapsed
            );
        },
    );
    println!("| Fabric | PEs | Oracle | Oracle heap | Kernel | Nodes | MII | II | Map time |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for row in &rows {
        let &(_, pes, tier, bytes) = fabric
            .iter()
            .find(|(label, ..)| *label == row.config)
            .expect("every row comes from a ladder workload");
        let nodes = kernels::by_name(&row.kernel).map_or(0, |d| d.num_nodes());
        let r = &row.results[0];
        let ii = r
            .achieved_ii
            .map_or("fail".to_string(), |ii| ii.to_string());
        println!(
            "| {} | {} | {} | {:.1} KB | {} | {} | {} | {} | {:.2} s |",
            row.config,
            pes,
            tier,
            bytes as f64 / 1024.0,
            row.kernel,
            nodes,
            row.mii,
            ii,
            r.elapsed.as_secs_f64(),
        );
    }
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    let trace = trace_sink(args.trace.as_deref());
    if args.smoke {
        run_smoke(args.seconds_per_ii.unwrap_or(10.0), args.jobs, trace);
    } else {
        run_curve(args.seconds_per_ii.unwrap_or(2.0), args.jobs, trace);
    }
    if let Some(path) = &args.metrics {
        write_metrics(path);
    }
}
