//! Ablations of Rewire's design choices (DESIGN.md §7), printed as tables:
//!
//! * cluster size cap α ∈ {1, 5, 10, 15, 25},
//! * Algorithm 2 search budgets (tiny verification budget vs default),
//! * amendment restarts on vs off.
//!
//! Usage: `cargo run -p rewire-bench --release --bin ablation [seconds_per_ii] [--jobs N] [--metrics FILE]`

use rewire_arch::presets;
use rewire_bench::{parallel_map, parse_cli};
use rewire_core::{RewireConfig, RewireMapper};
use rewire_dfg::kernels;
use rewire_mappers::{MapLimits, Mapper};
use std::time::Duration;

fn achieved(out: &rewire_mappers::MapOutcome) -> String {
    out.stats
        .achieved_ii
        .map_or("-".into(), |ii| ii.to_string())
}

fn main() {
    let args = parse_cli(1.5);
    let (secs, jobs) = (args.seconds_per_ii, args.jobs);
    let cgra = presets::paper_4x4_r4();
    let limits =
        MapLimits::benchmark().with_ii_time_budget(Duration::from_millis((secs * 1000.0) as u64));
    let suite = ["gesummv", "atax", "bicg", "mvt", "fir", "viterbi"];

    println!("== ablation: cluster size cap α ==");
    print!("{:<10}", "kernel");
    let alphas = [1usize, 5, 10, 15, 25];
    for a in alphas {
        print!(" {:>6}", format!("α={a}"));
    }
    println!();
    // Every (kernel, variant) run is independent, so each ablation table
    // fans its cell computations out over the worker pool and prints rows
    // once all cells for the table are back (input order is preserved).
    let alpha_cells: Vec<(&str, usize)> = suite
        .iter()
        .flat_map(|&name| alphas.iter().map(move |&alpha| (name, alpha)))
        .collect();
    let alpha_iis = parallel_map(&alpha_cells, jobs, |&(name, alpha)| {
        let dfg = kernels::by_name(name).unwrap();
        let config = RewireConfig {
            alpha,
            initial_cluster_size: alpha.min(3),
            ..Default::default()
        };
        achieved(&RewireMapper::with_config(config).map(&dfg, &cgra, &limits))
    });
    for (row, name) in suite.iter().enumerate() {
        print!("{name:<10}");
        for col in 0..alphas.len() {
            print!(" {:>6}", alpha_iis[row * alphas.len() + col]);
        }
        println!();
    }

    println!("\n== ablation: Algorithm 2 budgets ==");
    println!(
        "{:<10} {:>8} {:>8} {:>8}",
        "kernel", "default", "verif=8", "steps=1k"
    );
    let budget_rows = parallel_map(&suite, jobs, |&name| {
        let dfg = kernels::by_name(name).unwrap();
        let default = RewireMapper::new().map(&dfg, &cgra, &limits);
        let tiny_verif = RewireMapper::with_config(RewireConfig {
            max_verifications: 8,
            ..Default::default()
        })
        .map(&dfg, &cgra, &limits);
        let tiny_steps = RewireMapper::with_config(RewireConfig {
            max_search_steps: 1000,
            ..Default::default()
        })
        .map(&dfg, &cgra, &limits);
        (
            achieved(&default),
            achieved(&tiny_verif),
            achieved(&tiny_steps),
        )
    });
    for (name, (default, tiny_verif, tiny_steps)) in suite.iter().zip(&budget_rows) {
        println!("{name:<10} {default:>8} {tiny_verif:>8} {tiny_steps:>8}");
    }

    println!("\n== ablation: restarts per II ==");
    println!("{:<10} {:>9} {:>9}", "kernel", "restarts", "single");
    let restart_rows = parallel_map(&suite, jobs, |&name| {
        let dfg = kernels::by_name(name).unwrap();
        let with = RewireMapper::new().map(&dfg, &cgra, &limits);
        let single = RewireMapper::with_config(RewireConfig {
            max_restarts_per_ii: 1,
            ..Default::default()
        })
        .map(&dfg, &cgra, &limits);
        (achieved(&with), achieved(&single))
    });
    for (name, (with, single)) in suite.iter().zip(&restart_rows) {
        println!("{name:<10} {with:>9} {single:>9}");
    }

    // The mappers record into the global registry unconditionally, so the
    // snapshot captures every ablation variant's counters even though this
    // binary drives the mappers directly (no event sink involved).
    args.write_metrics();
}
