//! Ablations of Rewire's design choices (DESIGN.md §7), printed as tables:
//!
//! * cluster size cap α ∈ {1, 5, 10, 15, 25},
//! * Algorithm 2 search budgets (tiny verification budget vs default),
//! * amendment restarts on vs off.
//!
//! Usage: `cargo run -p rewire-bench --release --bin ablation [seconds_per_ii]`

use rewire_arch::presets;
use rewire_core::{RewireConfig, RewireMapper};
use rewire_dfg::kernels;
use rewire_mappers::{MapLimits, Mapper};
use std::time::Duration;

fn main() {
    let secs: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);
    let cgra = presets::paper_4x4_r4();
    let limits =
        MapLimits::benchmark().with_ii_time_budget(Duration::from_millis((secs * 1000.0) as u64));
    let suite = ["gesummv", "atax", "bicg", "mvt", "fir", "viterbi"];

    println!("== ablation: cluster size cap α ==");
    print!("{:<10}", "kernel");
    let alphas = [1usize, 5, 10, 15, 25];
    for a in alphas {
        print!(" {:>6}", format!("α={a}"));
    }
    println!();
    for name in suite {
        let dfg = kernels::by_name(name).unwrap();
        print!("{name:<10}");
        for alpha in alphas {
            let config = RewireConfig {
                alpha,
                initial_cluster_size: alpha.min(3),
                ..Default::default()
            };
            let out = RewireMapper::with_config(config).map(&dfg, &cgra, &limits);
            print!(
                " {:>6}",
                out.stats
                    .achieved_ii
                    .map_or("-".into(), |ii| ii.to_string())
            );
        }
        println!();
    }

    println!("\n== ablation: Algorithm 2 budgets ==");
    println!(
        "{:<10} {:>8} {:>8} {:>8}",
        "kernel", "default", "verif=8", "steps=1k"
    );
    for name in suite {
        let dfg = kernels::by_name(name).unwrap();
        let default = RewireMapper::new().map(&dfg, &cgra, &limits);
        let tiny_verif = RewireMapper::with_config(RewireConfig {
            max_verifications: 8,
            ..Default::default()
        })
        .map(&dfg, &cgra, &limits);
        let tiny_steps = RewireMapper::with_config(RewireConfig {
            max_search_steps: 1000,
            ..Default::default()
        })
        .map(&dfg, &cgra, &limits);
        let f = |o: &rewire_mappers::MapOutcome| {
            o.stats.achieved_ii.map_or("-".into(), |ii| ii.to_string())
        };
        println!(
            "{name:<10} {:>8} {:>8} {:>8}",
            f(&default),
            f(&tiny_verif),
            f(&tiny_steps)
        );
    }

    println!("\n== ablation: restarts per II ==");
    println!("{:<10} {:>9} {:>9}", "kernel", "restarts", "single");
    for name in suite {
        let dfg = kernels::by_name(name).unwrap();
        let with = RewireMapper::new().map(&dfg, &cgra, &limits);
        let single = RewireMapper::with_config(RewireConfig {
            max_restarts_per_ii: 1,
            ..Default::default()
        })
        .map(&dfg, &cgra, &limits);
        let f = |o: &rewire_mappers::MapOutcome| {
            o.stats.achieved_ii.map_or("-".into(), |ii| ii.to_string())
        };
        println!("{name:<10} {:>9} {:>9}", f(&with), f(&single));
    }
}
