//! Regenerates Fig 6: compilation time on the 4×4/2-reg and 8×8/4-reg
//! fabrics under equal per-II budgets (every mapper may consume its whole
//! budget at a failing II; see DESIGN.md §2 on the wall-clock
//! substitution).
//!
//! Usage: `cargo run -p rewire-bench --release --bin fig6 [seconds_per_ii] [--jobs N] [--trace FILE] [--metrics FILE] [--kernels a,b]`

use rewire_bench::{fig6_workloads, parse_cli, print_fig6, run_workloads_traced, MapperKind};

fn main() {
    let args = parse_cli(2.0);
    let (secs, jobs) = (args.seconds_per_ii, args.jobs);
    eprintln!("fig6: per-II budget {secs}s per mapper (equal-budget mode), {jobs} job(s)");
    let rows = run_workloads_traced(
        &args.filter_workloads(fig6_workloads()),
        &[
            MapperKind::Rewire,
            MapperKind::PathFinderFullBudget,
            MapperKind::Annealing,
        ],
        secs,
        jobs,
        args.event_sink(),
        |row| {
            eprintln!(
                "  {} / {}: {:?}",
                row.config,
                row.kernel,
                row.results
                    .iter()
                    .map(|r| (r.mapper, r.elapsed))
                    .collect::<Vec<_>>()
            );
        },
    );
    print_fig6(&rows);
    args.write_metrics();
}
