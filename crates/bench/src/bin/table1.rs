//! Regenerates Table I: number of single-node remapping iterations for PF*
//! and SA on 4×4 CGRAs with one and with four registers per PE, averaged
//! per explored II.
//!
//! Usage: `cargo run -p rewire-bench --release --bin table1 [seconds_per_ii] [--jobs N] [--trace FILE] [--metrics FILE] [--kernels a,b]`

use rewire_bench::{parse_cli, print_table1, run_workloads_traced, table1_workloads, MapperKind};

fn main() {
    let args = parse_cli(2.0);
    let (secs, jobs) = (args.seconds_per_ii, args.jobs);
    eprintln!("table1: per-II budget {secs}s per mapper, {jobs} job(s)");
    let rows = run_workloads_traced(
        &args.filter_workloads(table1_workloads()),
        &[MapperKind::PathFinder, MapperKind::Annealing],
        secs,
        jobs,
        args.event_sink(),
        |row| {
            eprintln!(
                "  {} / {}: {:?}",
                row.config,
                row.kernel,
                row.results
                    .iter()
                    .map(|r| (r.mapper, r.iterations_per_ii as u64))
                    .collect::<Vec<_>>()
            );
        },
    );
    print_table1(&rows);
    args.write_metrics();
}
