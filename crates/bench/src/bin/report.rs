//! `rewire-report` — aggregates an experiment's observability artefacts.
//!
//! Takes the JSONL `MapEvent` trace written by `--trace` and any number of
//! metrics snapshots written by `--metrics`, and prints a per-run table
//! (II achieved, MII, attempts, rounds, iterations, time) joined with the
//! scoped router/mapper counters, one `MapStats` line per run, and the
//! span-timer time breakdown.
//!
//! Usage: `rewire-report <trace.jsonl> [metrics.json ...]`
//!
//! Exit status: 0 = report printed, 1 = empty trace or malformed input,
//! 2 = usage error.

use rewire_bench::obs_report::{load_snapshots, parse_trace, render_report};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((trace_path, snapshot_paths)) = args.split_first() else {
        eprintln!("usage: rewire-report <trace.jsonl> [metrics.json ...]");
        return ExitCode::from(2);
    };

    let trace_text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let runs = match parse_trace(&trace_text) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("{trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if runs.is_empty() {
        eprintln!("{trace_path}: trace contains no runs");
        return ExitCode::FAILURE;
    }

    let mut snapshot_texts = Vec::new();
    for path in snapshot_paths {
        match std::fs::read_to_string(path) {
            Ok(t) => snapshot_texts.push((path.clone(), t)),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let snapshot = if snapshot_texts.is_empty() {
        None
    } else {
        match load_snapshots(&snapshot_texts) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };

    print!("{}", render_report(&runs, snapshot.as_ref()));
    ExitCode::SUCCESS
}
