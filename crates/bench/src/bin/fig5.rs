//! Regenerates Fig 5: mapping quality (II) of Rewire vs PF* vs SA on the
//! paper's four CGRA configurations.
//!
//! Usage: `cargo run -p rewire-bench --release --bin fig5 [seconds_per_ii] [--jobs N] [--trace FILE] [--metrics FILE] [--kernels a,b]`

use rewire_bench::{fig5_workloads, parse_cli, print_fig5, run_workloads_traced, MapperKind};

fn main() {
    let args = parse_cli(2.0);
    let (secs, jobs) = (args.seconds_per_ii, args.jobs);
    eprintln!("fig5: per-II budget {secs}s per mapper, {jobs} job(s)");
    let rows = run_workloads_traced(
        &args.filter_workloads(fig5_workloads()),
        &[
            MapperKind::Rewire,
            MapperKind::PathFinder,
            MapperKind::Annealing,
        ],
        secs,
        jobs,
        args.event_sink(),
        |row| {
            eprintln!(
                "  {} / {}: mii={} {:?}",
                row.config,
                row.kernel,
                row.mii,
                row.results
                    .iter()
                    .map(|r| (r.mapper, r.achieved_ii))
                    .collect::<Vec<_>>()
            );
        },
    );
    print_fig5(&rows);
    args.write_metrics();
}
