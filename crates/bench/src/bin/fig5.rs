//! Regenerates Fig 5: mapping quality (II) of Rewire vs PF* vs SA on the
//! paper's four CGRA configurations.
//!
//! Usage: `cargo run -p rewire-bench --release --bin fig5 [seconds_per_ii]`

use rewire_bench::{fig5_workloads, print_fig5, run_workloads, MapperKind};

fn main() {
    let secs: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    eprintln!("fig5: per-II budget {secs}s per mapper");
    let rows = run_workloads(
        &fig5_workloads(),
        &[
            MapperKind::Rewire,
            MapperKind::PathFinder,
            MapperKind::Annealing,
        ],
        secs,
        |row| {
            eprintln!(
                "  {} / {}: mii={} {:?}",
                row.config,
                row.kernel,
                row.mii,
                row.results
                    .iter()
                    .map(|r| (r.mapper, r.achieved_ii))
                    .collect::<Vec<_>>()
            );
        },
    );
    print_fig5(&rows);
}
