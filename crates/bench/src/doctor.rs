//! Failure forensics behind the `rewire-doctor` binary.
//!
//! Ingests the three observability artefacts a run can leave behind — the
//! JSONL `MapEvent` trace (`--trace`), metrics snapshots (`--metrics`),
//! and the flight-recorder decision log (`--flight`) — and prints a
//! diagnosis: the II-vs-MII gap per run, the most-failed DFG edges, the
//! top contended resources with an ASCII fabric heatmap, and the span-tree
//! time breakdown. Also hosts the Chrome `trace_event` validator the CI
//! uses to prove exported traces are well-formed (balanced `B`/`E` pairs,
//! per-thread monotonic timestamps).

use crate::obs_report::RunSummary;
use rewire_obs::json::{self, Json};
use rewire_obs::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One `(pe, class, cycle)` row of the congestion heatmap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeatRow {
    /// Dense PE index (links attribute to their source PE).
    pub pe: u32,
    /// Resource class (`"fu"`, `"link"`, `"reg"`).
    pub class: String,
    /// Modulo cycle.
    pub cycle: u32,
    /// Summed overuse across sampled rounds.
    pub overuse: u64,
    /// Largest single-round overuse.
    pub peak: u64,
    /// Rounds the cell was overused in.
    pub rounds: u64,
}

/// One `route_failed` flight event, grouped for ranking.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FailedEdge {
    /// Recording scope (`"<mapper>/<kernel>"`).
    pub scope: String,
    /// Source DFG node index.
    pub src: u64,
    /// Destination DFG node index.
    pub dst: u64,
    /// Router failure label.
    pub reason: String,
}

/// The flight-recorder log, parsed generically from its JSON export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlightData {
    /// Records evicted because the ring was full.
    pub dropped: u64,
    /// Failed edges with multiplicity, most frequent first.
    pub failed_edges: Vec<(FailedEdge, u64)>,
    /// `attempt_phase` label counts (`"stall_detected"`, ...).
    pub phases: BTreeMap<String, u64>,
    /// Total events in the ring.
    pub events: usize,
    /// Heatmap rows, most overused first.
    pub heatmap: Vec<HeatRow>,
}

fn u64_field(obj: &Json, name: &str) -> u64 {
    obj.get(name).and_then(Json::as_u64).unwrap_or(0)
}

/// Parses a flight-recorder JSON export (version 1).
pub fn parse_flight(text: &str) -> Result<FlightData, String> {
    let root = json::parse(text).map_err(|e| format!("flight log: {e}"))?;
    match root.get("version").and_then(Json::as_u64) {
        Some(1) => {}
        other => return Err(format!("flight log: unsupported version {other:?}")),
    }
    let mut data = FlightData {
        dropped: u64_field(&root, "dropped"),
        ..FlightData::default()
    };
    let events = root
        .get("events")
        .and_then(Json::as_array)
        .ok_or("flight log: missing events array")?;
    data.events = events.len();
    let mut fails: BTreeMap<FailedEdge, u64> = BTreeMap::new();
    for e in events {
        match e.get("kind").and_then(Json::as_str) {
            Some("route_failed") => {
                let key = FailedEdge {
                    scope: e
                        .get("scope")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    src: u64_field(e, "src"),
                    dst: u64_field(e, "dst"),
                    reason: e
                        .get("reason")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                };
                *fails.entry(key).or_insert(0) += 1;
            }
            Some("attempt_phase") => {
                let phase = e.get("phase").and_then(Json::as_str).unwrap_or("");
                *data.phases.entry(phase.to_string()).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    data.failed_edges = fails.into_iter().collect();
    data.failed_edges
        .sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let heat = root
        .get("heatmap")
        .and_then(Json::as_array)
        .ok_or("flight log: missing heatmap array")?;
    for cell in heat {
        data.heatmap.push(HeatRow {
            pe: u64_field(cell, "pe") as u32,
            class: cell
                .get("class")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            cycle: u64_field(cell, "cycle") as u32,
            overuse: u64_field(cell, "overuse"),
            peak: u64_field(cell, "peak"),
            rounds: u64_field(cell, "rounds"),
        });
    }
    data.heatmap
        .sort_by_key(|row| std::cmp::Reverse(row.overuse));
    Ok(data)
}

/// The fabric's `(rows, cols)`, read from the `engine.fabric_rows`/`_cols`
/// gauges (max over scopes); falls back to a square grid just covering the
/// highest PE index in the heatmap.
fn fabric_dims(snap: Option<&Snapshot>, heat: &[HeatRow]) -> (u32, u32) {
    let gauge_max = |name: &str| {
        snap.and_then(|s| {
            s.scopes
                .values()
                .filter_map(|sc| sc.gauges.get(name).copied())
                .max()
        })
        .filter(|&v| v > 0)
        .map(|v| v as u32)
    };
    if let (Some(r), Some(c)) = (
        gauge_max("engine.fabric_rows"),
        gauge_max("engine.fabric_cols"),
    ) {
        return (r, c);
    }
    let max_pe = heat.iter().map(|h| h.pe).max().unwrap_or(0);
    let side = (1u32..).find(|s| s * s > max_pe).unwrap_or(1);
    (side, side)
}

/// Renders the per-PE congestion as an ASCII grid (PE ids are row-major),
/// `.` = no recorded overuse, `1`-`9` then `#` for hotter cells scaled to
/// the hottest PE.
fn render_fabric_heatmap(heat: &[HeatRow], rows: u32, cols: u32) -> String {
    let mut per_pe: BTreeMap<u32, u64> = BTreeMap::new();
    for h in heat {
        *per_pe.entry(h.pe).or_insert(0) += h.overuse;
    }
    let hottest = per_pe.values().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for r in 0..rows {
        out.push_str("    ");
        for c in 0..cols {
            let v = per_pe.get(&(r * cols + c)).copied().unwrap_or(0);
            let ch = if v == 0 {
                '.'
            } else {
                // 1..=9 scaled to the hottest PE, '#' for the top decile.
                let level = (v * 10).div_ceil(hottest).min(10);
                if level >= 10 {
                    '#'
                } else {
                    char::from_digit(level as u32, 10).unwrap_or('9')
                }
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Renders the merged span tree: spans aggregated across scopes by path,
/// indented by tree depth, with call counts and total milliseconds.
fn render_span_tree(snap: &Snapshot) -> String {
    let mut merged: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for scope in snap.scopes.values() {
        for (path, span) in &scope.spans {
            let e = merged.entry(path.as_str()).or_insert((0, 0));
            e.0 += span.count;
            e.1 += span.total_ns;
        }
    }
    let mut out = String::new();
    for (path, (count, total_ns)) in &merged {
        let depth = path.matches('/').count();
        let name = path.rsplit('/').next().unwrap_or(path);
        let _ = writeln!(
            out,
            "    {:indent$}{:<24} {:>7}x {:>10.1} ms",
            "",
            name,
            count,
            *total_ns as f64 / 1e6,
            indent = depth * 2
        );
    }
    out
}

/// Builds the full diagnosis from whatever artefacts are present. Never
/// returns an empty string: even with no inputs it says what is missing.
pub fn diagnose(
    runs: &[RunSummary],
    snap: Option<&Snapshot>,
    flight: Option<&FlightData>,
    top_k: usize,
) -> String {
    let mut out = String::new();

    out.push_str("== II vs MII ==\n");
    if runs.is_empty() {
        out.push_str("  no runs (no --trace given or trace was empty)\n");
    }
    let mut sorted: Vec<&RunSummary> = runs.iter().collect();
    // Failures first, then by gap descending: the sickest run leads.
    sorted.sort_by_key(|r| {
        (
            r.achieved_ii.is_some(),
            r.achieved_ii
                .map_or(0i64, |ii| -(i64::from(ii) - i64::from(r.mii))),
        )
    });
    for r in sorted {
        match r.achieved_ii {
            Some(ii) => {
                let gap = ii.saturating_sub(r.mii);
                let _ = writeln!(
                    out,
                    "  {:<24} II {ii} vs MII {} (gap {gap}{})",
                    r.scope(),
                    r.mii,
                    if gap == 0 { ", optimal" } else { "" }
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {:<24} FAILED ({}) after {} IIs, {} attempts",
                    r.scope(),
                    r.gave_up.as_deref().unwrap_or("unknown"),
                    r.iis_started,
                    r.attempts
                );
            }
        }
    }

    out.push_str("\n== most-failed edges ==\n");
    match flight {
        None => out.push_str("  no flight log (--flight not given)\n"),
        Some(f) if f.failed_edges.is_empty() => {
            out.push_str("  no route failures recorded\n");
        }
        Some(f) => {
            for (edge, n) in f.failed_edges.iter().take(top_k) {
                let _ = writeln!(
                    out,
                    "  {:<24} edge {} -> {} failed {n}x ({})",
                    edge.scope, edge.src, edge.dst, edge.reason
                );
            }
        }
    }

    out.push_str("\n== top contended resources ==\n");
    match flight {
        None => out.push_str("  no flight log (--flight not given)\n"),
        Some(f) if f.heatmap.is_empty() => {
            out.push_str("  no congestion recorded\n");
        }
        Some(f) => {
            for h in f.heatmap.iter().take(top_k) {
                let _ = writeln!(
                    out,
                    "  PE {:>3} {:<4} @cycle {:<3} overuse {:>5} (peak {}, {} rounds)",
                    h.pe, h.class, h.cycle, h.overuse, h.peak, h.rounds
                );
            }
            let (rows, cols) = fabric_dims(snap, &f.heatmap);
            let _ = writeln!(out, "  fabric heat ({rows}x{cols}, '#' = hottest PE):");
            out.push_str(&render_fabric_heatmap(&f.heatmap, rows, cols));
        }
    }

    out.push_str("\n== span tree ==\n");
    match snap {
        None => out.push_str("  no metrics snapshot (--metrics not given)\n"),
        Some(s) => {
            let tree = render_span_tree(s);
            if tree.is_empty() {
                out.push_str("  no span timers recorded\n");
            } else {
                out.push_str(&tree);
            }
        }
    }

    if let Some(f) = flight {
        out.push_str("\n== flight summary ==\n");
        let _ = writeln!(out, "  {} events in ring, {} dropped", f.events, f.dropped);
        for (phase, n) in &f.phases {
            let _ = writeln!(out, "  phase {phase:<20} {n}x");
        }
        let stalls = f.phases.get("stall_detected").copied().unwrap_or(0);
        if stalls > 0 {
            let _ = writeln!(
                out,
                "  WARNING: {stalls} stall(s) detected — attempts overshot their deadline"
            );
        }
    }
    out
}

/// What [`validate_chrome`] counted in a well-formed trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total `traceEvents` entries.
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub spans: usize,
    /// Instant (`ph:"i"`) events.
    pub instants: usize,
}

/// Validates a Chrome `trace_event` export: parses with the workspace JSON
/// parser, requires every `B` to be closed by a matching `E` in
/// stack order per thread, and per-thread non-decreasing timestamps.
pub fn validate_chrome(text: &str) -> Result<ChromeSummary, String> {
    let root = json::parse(text).map_err(|e| format!("chrome trace: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("chrome trace: missing traceEvents array")?;
    let mut summary = ChromeSummary {
        events: events.len(),
        ..ChromeSummary::default()
    };
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let prev = last_ts.entry(tid).or_insert(0);
        if ts < *prev {
            return Err(format!(
                "event {i}: tid {tid} timestamp went backwards ({ts} < {prev})"
            ));
        }
        *prev = ts;
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_string()),
            "E" => match stacks.entry(tid).or_default().pop() {
                Some(top) if top == name => summary.spans += 1,
                Some(top) => {
                    return Err(format!(
                        "event {i}: tid {tid} E {name:?} does not match open B {top:?}"
                    ))
                }
                None => return Err(format!("event {i}: tid {tid} E {name:?} without open B")),
            },
            "i" => summary.instants += 1,
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} unclosed B event(s)", stack.len()));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs_report::parse_trace;
    use rewire_obs::{ChromeTrace, FlightEvent, FlightRecorder};

    fn sample_flight_json() -> String {
        let r = FlightRecorder::new(64);
        r.enable(0);
        for _ in 0..3 {
            r.record_in(
                "PF*/fir",
                FlightEvent::RouteFailed {
                    edge: (1, 2),
                    ii: 3,
                    reason: "no_path",
                },
            );
        }
        r.record_in(
            "PF*/fir",
            FlightEvent::RouteFailed {
                edge: (0, 4),
                ii: 3,
                reason: "no_path",
            },
        );
        r.record_in(
            "PF*/fir",
            FlightEvent::AttemptPhase {
                phase: "stall_detected",
                ii: 3,
            },
        );
        r.heat(5, "link", 1, 7);
        r.heat(2, "fu", 0, 3);
        r.snapshot().to_json()
    }

    #[test]
    fn flight_parse_ranks_edges_and_heat() {
        let data = parse_flight(&sample_flight_json()).unwrap();
        assert_eq!(data.events, 5);
        assert_eq!(data.dropped, 0);
        assert_eq!(data.failed_edges[0].1, 3, "most frequent edge first");
        assert_eq!(data.failed_edges[0].0.src, 1);
        assert_eq!(data.heatmap[0].pe, 5, "hottest cell first");
        assert_eq!(data.phases.get("stall_detected"), Some(&1));
    }

    #[test]
    fn flight_parse_rejects_bad_versions() {
        assert!(parse_flight("{\"version\":99,\"events\":[],\"heatmap\":[]}").is_err());
        assert!(parse_flight("not json").is_err());
    }

    #[test]
    fn diagnosis_covers_all_sections() {
        let trace = concat!(
            r#"{"mapper":"PF*","kernel":"fir","seed":7,"type":"ii_started","ii":3}"#,
            "\n",
            r#"{"mapper":"PF*","kernel":"fir","seed":7,"type":"gave_up","reason":"max_ii_reached","iis_explored":1,"elapsed_us":900}"#,
            "\n",
        );
        let runs = parse_trace(trace).unwrap();
        let flight = parse_flight(&sample_flight_json()).unwrap();
        let report = diagnose(&runs, None, Some(&flight), 5);
        assert!(report.contains("FAILED (max_ii_reached)"), "{report}");
        assert!(report.contains("edge 1 -> 2 failed 3x"), "{report}");
        assert!(report.contains("PE   5"), "{report}");
        assert!(report.contains("fabric heat"), "{report}");
        assert!(report.contains("stall"), "{report}");
        // No metrics snapshot: the span section says so instead of vanishing.
        assert!(report.contains("no metrics snapshot"), "{report}");
    }

    #[test]
    fn diagnosis_is_never_empty() {
        let report = diagnose(&[], None, None, 5);
        assert!(report.contains("no runs"), "{report}");
        assert!(report.contains("no flight log"), "{report}");
    }

    #[test]
    fn fabric_heatmap_is_row_major() {
        let heat = vec![
            HeatRow {
                pe: 5,
                class: "fu".into(),
                cycle: 0,
                overuse: 10,
                peak: 10,
                rounds: 1,
            },
            HeatRow {
                pe: 0,
                class: "fu".into(),
                cycle: 0,
                overuse: 1,
                peak: 1,
                rounds: 1,
            },
        ];
        let grid = render_fabric_heatmap(&heat, 2, 4);
        let lines: Vec<&str> = grid.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].trim(), "1...", "PE 0 is top-left");
        assert_eq!(lines[1].trim(), ".#..", "PE 5 = row 1, col 1 is hottest");
    }

    #[test]
    fn chrome_validation_accepts_real_exports_and_rejects_corruption() {
        let chrome = ChromeTrace::new(64);
        chrome.enable(0);
        assert!(chrome.begin("run", "m/k"));
        assert!(chrome.begin("run/attempt", "m/k"));
        chrome.end("run/attempt", "m/k");
        chrome.end("run", "m/k");
        let good = chrome.export_json(None);
        let summary = validate_chrome(&good).unwrap();
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.events, 4);

        // Drop one E: the validator must flag the unclosed B.
        let truncated = good.replacen(
            "{\"name\":\"run\",\"ph\":\"E\"",
            "{\"name\":\"run\",\"ph\":\"i\",\"s\":\"g\"",
            1,
        );
        assert!(validate_chrome(&truncated).is_err());
        assert!(validate_chrome("{}").is_err());
    }
}
