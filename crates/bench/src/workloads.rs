//! The benchmark–architecture combinations of the paper's evaluation.
//!
//! The paper evaluates 47 DFG/architecture combinations over four CGRA
//! configurations, dropping combinations that none of the three mappers can
//! map (e.g. unrolled loops on register-starved fabrics) and stressing the
//! 8×8 fabric with unroll-by-2 variants.

use rewire_arch::{presets, Cgra};
use rewire_dfg::{kernels, Dfg};

/// One evaluation group: an architecture and the kernels run on it.
pub struct Workload {
    /// Figure label, e.g. `"4x4 4reg"`.
    pub label: &'static str,
    /// The architecture.
    pub cgra: Cgra,
    /// The kernels (base and unrolled variants).
    pub kernels: Vec<Dfg>,
    /// Per-II budget multiplier: the 8×8 group gets more wall-clock, like
    /// the paper's observation that "the compilation time on 8×8 CGRA is
    /// significantly higher than 4×4 CGRA due to the larger search space".
    pub budget_scale: f64,
}

fn by_names(names: &[&str]) -> Vec<Dfg> {
    names
        .iter()
        .map(|n| kernels::by_name(n).unwrap_or_else(|| panic!("unknown kernel {n}")))
        .collect()
}

/// Fig 5's four groups — 47 combinations in total (12 + 13 + 12 + 10),
/// mirroring the paper's setup: every 4×4 group runs the core suite, the
/// 8×8 group adds unrolled variants, and the one-register extreme case
/// keeps only the kernels with enough routing slack to be mappable at all.
pub fn fig5_workloads() -> Vec<Workload> {
    vec![
        Workload {
            label: "4x4 4reg",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r4(),
            kernels: by_names(&[
                "gramschmidt",
                "ludcmp",
                "lu",
                "gemver",
                "cholesky",
                "gesummv",
                "atax",
                "bicg",
                "mvt",
                "fir",
                "jacobi2d",
                "viterbi",
            ]),
        },
        Workload {
            label: "8x8 4reg",
            budget_scale: 3.0,
            cgra: presets::paper_8x8_r4(),
            kernels: by_names(&[
                "gramschmidt",
                "ludcmp",
                "lu",
                "cholesky",
                "gesummv",
                "atax",
                "bicg",
                "mvt",
                "bicg(u)",
                "gesummv(u)",
                "atax(u)",
                "mvt(u)",
                "fir(u)",
            ]),
        },
        Workload {
            label: "4x4 2reg",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r2(),
            kernels: by_names(&[
                "gramschmidt",
                "ludcmp",
                "lu",
                "gemver",
                "cholesky",
                "gesummv",
                "atax",
                "bicg",
                "mvt",
                "fir",
                "jacobi2d",
                "viterbi",
            ]),
        },
        Workload {
            label: "4x4 1reg",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r1(),
            kernels: by_names(&[
                "gramschmidt",
                "ludcmp",
                "lu",
                "gemver",
                "cholesky",
                "gesummv",
                "atax",
                "bicg",
                "mvt",
                "fir",
            ]),
        },
    ]
}

/// Fig 6's two compile-time groups: 4×4 with two registers per PE and the
/// 8×8 fabric.
pub fn fig6_workloads() -> Vec<Workload> {
    fig5_workloads()
        .into_iter()
        .filter(|w| w.label == "4x4 2reg" || w.label == "8x8 4reg")
        .collect()
}

/// The fabric-scaling ladder (`scaling` binary, EXPERIMENTS.md §scaling):
/// every fabric from 4×4 to 64×64 runs a fixed small kernel (`fir`, so the
/// fabric is the only axis that moves) plus unrolled variants sized to the
/// fabric, produced through `Dfg::unroll` via the `"<name>(uN)"` lookup.
/// Budgets grow with the search space the way the 8×8 paper group's does.
pub fn scaling_workloads() -> Vec<Workload> {
    presets::scaling_configs()
        .into_iter()
        .map(|(label, cgra)| {
            let (names, budget_scale): (&[&str], f64) = match label {
                "4x4" => (&["fir", "atax"], 1.0),
                "8x8" => (&["fir", "fir(u)", "atax(u)"], 3.0),
                "16x16" => (&["fir", "fir(u4)", "atax(u)"], 6.0),
                "32x32" => (&["fir", "fir(u)", "atax(u)"], 10.0),
                "64x64" => (&["fir", "fir(u)", "atax(u)"], 20.0),
                other => unreachable!("unknown scaling fabric {other}"),
            };
            Workload {
                label,
                cgra,
                kernels: by_names(names),
                budget_scale,
            }
        })
        .collect()
}

/// Table I's two groups (4×4 with four registers and with one register) and
/// its eight kernels.
pub fn table1_workloads() -> Vec<Workload> {
    let names = [
        "gramschmidt",
        "ludcmp",
        "lu",
        "gemver",
        "cholesky",
        "gesummv",
        "atax",
        "bicg(u)",
    ];
    vec![
        Workload {
            label: "4x4 1reg",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r1(),
            kernels: by_names(&names),
        },
        Workload {
            label: "4x4 4reg",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r4(),
            kernels: by_names(&names),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_has_47_combinations() {
        let total: usize = fig5_workloads().iter().map(|w| w.kernels.len()).sum();
        assert_eq!(total, 47);
    }

    #[test]
    fn every_workload_kernel_has_a_mii() {
        for w in fig5_workloads() {
            for dfg in &w.kernels {
                assert!(
                    dfg.mii(&w.cgra).is_some(),
                    "{} on {}: no MII",
                    dfg.name(),
                    w.label
                );
            }
        }
    }

    #[test]
    fn fig6_uses_the_papers_two_configs() {
        let labels: Vec<_> = fig6_workloads().iter().map(|w| w.label).collect();
        assert_eq!(labels, vec!["8x8 4reg", "4x4 2reg"]);
    }

    #[test]
    fn scaling_ladder_covers_4x4_through_64x64() {
        let workloads = scaling_workloads();
        let labels: Vec<_> = workloads.iter().map(|w| w.label).collect();
        assert_eq!(labels, vec!["4x4", "8x8", "16x16", "32x32", "64x64"]);
        for w in &workloads {
            for dfg in &w.kernels {
                assert!(
                    dfg.mii(&w.cgra).is_some(),
                    "{} on {}: no MII",
                    dfg.name(),
                    w.label
                );
            }
        }
    }

    #[test]
    fn table1_has_eight_kernels_per_config() {
        for w in table1_workloads() {
            assert_eq!(w.kernels.len(), 8, "{}", w.label);
        }
    }
}
