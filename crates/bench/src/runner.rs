//! Runs mappers over workloads and collects result rows.

use crate::workloads::Workload;
use rewire_core::RewireMapper;
use rewire_mappers::{MapLimits, Mapper, PathFinderConfig, PathFinderMapper, SaMapper};
use std::time::Duration;

/// The three mappers of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapperKind {
    /// The paper's contribution.
    Rewire,
    /// PathFinder-style baseline, faithful early termination.
    PathFinder,
    /// PathFinder-style baseline consuming the full per-II budget with
    /// randomised restarts (the equal-budget compile-time setup).
    PathFinderFullBudget,
    /// Simulated-annealing baseline (re-anneals until the budget).
    Annealing,
}

impl MapperKind {
    /// Instantiates the mapper.
    pub fn build(self) -> Box<dyn Mapper> {
        match self {
            MapperKind::Rewire => Box::new(RewireMapper::new()),
            MapperKind::PathFinder => Box::new(PathFinderMapper::new()),
            MapperKind::PathFinderFullBudget => {
                Box::new(PathFinderMapper::with_config(PathFinderConfig {
                    use_full_budget: true,
                    ..Default::default()
                }))
            }
            MapperKind::Annealing => Box::new(SaMapper::new()),
        }
    }

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            MapperKind::Rewire => "Rewire",
            MapperKind::PathFinder | MapperKind::PathFinderFullBudget => "PF*",
            MapperKind::Annealing => "SA",
        }
    }
}

/// One mapper's result on one benchmark–architecture combination.
#[derive(Clone, Debug)]
pub struct MapperResult {
    /// Which mapper produced it.
    pub mapper: &'static str,
    /// Achieved II (`None` = failed within budget).
    pub achieved_ii: Option<u32>,
    /// Total wall-clock compilation time.
    pub elapsed: Duration,
    /// Average single-node remapping iterations per explored II.
    pub iterations_per_ii: f64,
}

/// One row of an experiment: a kernel on an architecture, with all mappers'
/// results.
#[derive(Clone, Debug)]
pub struct Row {
    /// Architecture label.
    pub config: &'static str,
    /// Kernel name.
    pub kernel: String,
    /// Theoretical minimum II.
    pub mii: u32,
    /// Per-mapper results, in the order the mappers were passed.
    pub results: Vec<MapperResult>,
}

/// Runs every `(kernel, architecture)` combination of `workloads` through
/// `mappers` with the given per-II budget, calling `progress` after each
/// row (for live output).
pub fn run_workloads(
    workloads: &[Workload],
    mappers: &[MapperKind],
    seconds_per_ii: f64,
    mut progress: impl FnMut(&Row),
) -> Vec<Row> {
    let mut rows = Vec::new();
    for w in workloads {
        let limits = MapLimits::benchmark().with_ii_time_budget(Duration::from_millis(
            (seconds_per_ii * w.budget_scale * 1000.0) as u64,
        ));
        for dfg in &w.kernels {
            let Some(mii) = dfg.mii(&w.cgra) else {
                continue;
            };
            let mut results = Vec::new();
            for &kind in mappers {
                let mapper = kind.build();
                let outcome = mapper.map(dfg, &w.cgra, &limits);
                if let Some(m) = &outcome.mapping {
                    assert!(m.is_valid(dfg, &w.cgra), "{} on {}", dfg.name(), w.label);
                }
                results.push(MapperResult {
                    mapper: kind.label(),
                    achieved_ii: outcome.stats.achieved_ii,
                    elapsed: outcome.stats.elapsed,
                    iterations_per_ii: outcome.stats.remap_iterations_per_ii(),
                });
            }
            let row = Row {
                config: w.label,
                kernel: dfg.name().to_string(),
                mii,
                results,
            };
            progress(&row);
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use rewire_arch::presets;
    use rewire_dfg::kernels;

    #[test]
    fn runner_produces_one_row_per_combination() {
        let w = Workload {
            label: "test",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r4(),
            kernels: vec![kernels::fir(), kernels::atax()],
        };
        let mut seen = 0;
        let rows = run_workloads(&[w], &[MapperKind::PathFinder], 0.3, |_| seen += 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(seen, 2);
        for row in &rows {
            assert_eq!(row.results.len(), 1);
            assert_eq!(row.results[0].mapper, "PF*");
            assert!(row.mii >= 1);
        }
    }

    #[test]
    fn mapper_kinds_build_and_label() {
        for kind in [
            MapperKind::Rewire,
            MapperKind::PathFinder,
            MapperKind::PathFinderFullBudget,
            MapperKind::Annealing,
        ] {
            let mapper = kind.build();
            assert!(!mapper.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(MapperKind::PathFinderFullBudget.label(), "PF*");
    }
}
