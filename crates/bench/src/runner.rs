//! Runs mappers over workloads and collects result rows.

use crate::workloads::Workload;
use rewire_core::RewireMapper;
use rewire_mappers::engine::{EventSink, Fanout, JsonlTrace, MetricsSink, SharedSink};
use rewire_mappers::{MapLimits, Mapper, PathFinderConfig, PathFinderMapper, SaMapper};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// The three mappers of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapperKind {
    /// The paper's contribution.
    Rewire,
    /// PathFinder-style baseline, faithful early termination.
    PathFinder,
    /// PathFinder-style baseline consuming the full per-II budget with
    /// randomised restarts (the equal-budget compile-time setup).
    PathFinderFullBudget,
    /// Simulated-annealing baseline (re-anneals until the budget).
    Annealing,
}

impl MapperKind {
    /// Instantiates the mapper.
    pub fn build(self) -> Box<dyn Mapper> {
        match self {
            MapperKind::Rewire => Box::new(RewireMapper::new()),
            MapperKind::PathFinder => Box::new(PathFinderMapper::new()),
            MapperKind::PathFinderFullBudget => {
                Box::new(PathFinderMapper::with_config(PathFinderConfig {
                    use_full_budget: true,
                    ..Default::default()
                }))
            }
            MapperKind::Annealing => Box::new(SaMapper::new()),
        }
    }

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            MapperKind::Rewire => "Rewire",
            MapperKind::PathFinder | MapperKind::PathFinderFullBudget => "PF*",
            MapperKind::Annealing => "SA",
        }
    }
}

/// One mapper's result on one benchmark–architecture combination.
#[derive(Clone, Debug)]
pub struct MapperResult {
    /// Which mapper produced it.
    pub mapper: &'static str,
    /// Achieved II (`None` = failed within budget).
    pub achieved_ii: Option<u32>,
    /// Total wall-clock compilation time.
    pub elapsed: Duration,
    /// Average single-node remapping iterations per explored II.
    pub iterations_per_ii: f64,
}

/// One row of an experiment: a kernel on an architecture, with all mappers'
/// results.
#[derive(Clone, Debug)]
pub struct Row {
    /// Architecture label.
    pub config: &'static str,
    /// Kernel name.
    pub kernel: String,
    /// Theoretical minimum II.
    pub mii: u32,
    /// Per-mapper results, in the order the mappers were passed.
    pub results: Vec<MapperResult>,
}

/// Runs every `(kernel, architecture)` combination of `workloads` through
/// `mappers` with the given per-II budget, calling `progress` after each
/// row (for live output).
pub fn run_workloads(
    workloads: &[Workload],
    mappers: &[MapperKind],
    seconds_per_ii: f64,
    progress: impl FnMut(&Row),
) -> Vec<Row> {
    run_workloads_traced(workloads, mappers, seconds_per_ii, 1, None, progress)
}

/// One `(kernel, architecture, mapper)` unit of work for the fan-out.
struct Task<'a> {
    row: usize,
    slot: usize,
    kind: MapperKind,
    dfg: &'a rewire_dfg::Dfg,
    cgra: &'a rewire_arch::Cgra,
    label: &'static str,
    limits: MapLimits,
}

impl Task<'_> {
    fn run(&self, trace: Option<&SharedSink>) -> MapperResult {
        let mapper = self.kind.build();
        let outcome = match trace {
            Some(sink) => {
                let mut sink = sink.clone();
                mapper.map_with_events(self.dfg, self.cgra, &self.limits, &mut sink)
            }
            None => mapper.map(self.dfg, self.cgra, &self.limits),
        };
        if let Some(m) = &outcome.mapping {
            assert!(
                m.is_valid(self.dfg, self.cgra),
                "{} on {}",
                self.dfg.name(),
                self.label
            );
        }
        MapperResult {
            mapper: self.kind.label(),
            achieved_ii: outcome.stats.achieved_ii,
            elapsed: outcome.stats.elapsed,
            iterations_per_ii: outcome.stats.remap_iterations_per_ii(),
        }
    }
}

/// [`run_workloads`] with `jobs` OS threads fanning out over every
/// `(kernel, architecture, mapper)` combination.
///
/// Work is pulled from a shared atomic index, so thread scheduling decides
/// only *who* runs a combination — each combination itself is mapped with
/// exactly the same limits and seed as in the serial runner, and the
/// returned rows are assembled in the serial order regardless of completion
/// order. `progress` fires on the calling thread as rows *complete*, which
/// under `jobs > 1` may be out of row order.
pub fn run_workloads_jobs(
    workloads: &[Workload],
    mappers: &[MapperKind],
    seconds_per_ii: f64,
    jobs: usize,
    progress: impl FnMut(&Row),
) -> Vec<Row> {
    run_workloads_traced(workloads, mappers, seconds_per_ii, jobs, None, progress)
}

/// [`run_workloads_jobs`] with an optional shared [`MapEvent`] trace sink.
///
/// Every `(kernel, architecture, mapper)` run emits its events into a clone
/// of `trace`, so a single JSONL file receives the whole experiment's trace
/// even under `--jobs` fan-out (lines interleave across runs but stay
/// attributable — each carries its mapper/kernel/seed identity).
///
/// [`MapEvent`]: rewire_mappers::MapEvent
pub fn run_workloads_traced(
    workloads: &[Workload],
    mappers: &[MapperKind],
    seconds_per_ii: f64,
    jobs: usize,
    trace: Option<SharedSink>,
    mut progress: impl FnMut(&Row),
) -> Vec<Row> {
    // Flatten into row skeletons (one per kernel × architecture) and
    // per-mapper tasks, preserving the serial iteration order.
    let mut skeletons: Vec<Row> = Vec::new();
    let mut tasks: Vec<Task> = Vec::new();
    for w in workloads {
        let limits = MapLimits::benchmark().with_ii_time_budget(Duration::from_millis(
            (seconds_per_ii * w.budget_scale * 1000.0) as u64,
        ));
        for dfg in &w.kernels {
            let Some(mii) = dfg.mii(&w.cgra) else {
                continue;
            };
            let row = skeletons.len();
            skeletons.push(Row {
                config: w.label,
                kernel: dfg.name().to_string(),
                mii,
                results: Vec::new(),
            });
            for (slot, &kind) in mappers.iter().enumerate() {
                tasks.push(Task {
                    row,
                    slot,
                    kind,
                    dfg,
                    cgra: &w.cgra,
                    label: w.label,
                    limits,
                });
            }
        }
    }

    if jobs <= 1 {
        // Serial path: run in order, fire progress per finished row.
        for task in &tasks {
            let result = task.run(trace.as_ref());
            skeletons[task.row].results.push(result);
            if skeletons[task.row].results.len() == mappers.len() {
                progress(&skeletons[task.row]);
            }
        }
        if let Some(mut sink) = trace {
            sink.finish();
        }
        return skeletons;
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, MapperResult)>();
    let mut slots: Vec<Vec<Option<MapperResult>>> =
        vec![vec![None; mappers.len()]; skeletons.len()];
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(tasks.len().max(1)) {
            let tx = tx.clone();
            let next = &next;
            let tasks = &tasks;
            let trace = trace.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                if tx.send((i, task.run(trace.as_ref()))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Collect on the calling thread; fire progress as rows fill up.
        for (i, result) in rx {
            let task = &tasks[i];
            slots[task.row][task.slot] = Some(result);
            if slots[task.row].iter().all(Option::is_some) {
                let results: Vec<MapperResult> = slots[task.row]
                    .iter_mut()
                    .map(|s| s.take().expect("slot just checked full"))
                    .collect();
                skeletons[task.row].results = results;
                progress(&skeletons[task.row]);
            }
        }
    });
    // Flush the shared sink once the whole experiment is done, so traces
    // survive even if the binary exits without dropping the sink.
    if let Some(mut sink) = trace {
        sink.finish();
    }
    skeletons
}

/// Applies `f` to every item on `jobs` threads, returning results in input
/// order. With `jobs <= 1` this is a plain serial map. Used by the
/// experiment binaries for coarse-grained fan-out of independent mapper
/// runs (each item's computation must not depend on the others).
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in rx {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index visited exactly once"))
        .collect()
}

/// Parsed common experiment-binary CLI options.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchArgs {
    /// Per-II wall-clock budget in seconds.
    pub seconds_per_ii: f64,
    /// Worker threads for the workload fan-out (`--jobs N`, default 1).
    pub jobs: usize,
    /// JSONL trace file path (`--trace FILE`), if requested.
    pub trace: Option<String>,
    /// Metrics snapshot file path (`--metrics FILE`), if requested.
    pub metrics: Option<String>,
    /// Kernel-name filter (`--kernels a,b,c`): restrict every workload to
    /// the named kernels. `None` runs the full suite.
    pub kernels: Option<Vec<String>>,
    /// Chrome `trace_event` JSON file path (`--chrome-trace FILE`), if
    /// requested. Enables the span collector and the flight recorder.
    pub chrome_trace: Option<String>,
    /// Flight-recorder JSON file path (`--flight FILE`), if requested.
    pub flight: Option<String>,
    /// Router sweep mode (`--router dense|pruned`, default pruned). The
    /// dense mode exists for A/B measurement of the reachability pruning —
    /// outcomes are byte-identical by construction, only the expansion
    /// counts differ.
    pub router: rewire_mrrg::RouterMode,
    /// Fan-out mode (`--router tree|per-edge`, default tree). Tree mode
    /// routes multi-sink signals as shared route trees; per-edge is the
    /// independent-path baseline the differential gates compare against.
    /// Orthogonal to the sweep mode — the `--router` flag is repeatable.
    pub fanout: rewire_mrrg::FanoutMode,
}

impl BenchArgs {
    /// Opens the `--trace` file (if any) as a shared JSONL sink suitable
    /// for [`run_workloads_traced`]. Panics with a readable message when
    /// the file cannot be created — a bench run with an unwritable trace
    /// path should fail fast, not silently drop its trace.
    pub fn trace_sink(&self) -> Option<SharedSink> {
        self.trace.as_ref().map(|path| {
            let sink = JsonlTrace::create(path)
                .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
            SharedSink::new(sink)
        })
    }

    /// Composes every requested observability sink — the `--trace` JSONL
    /// writer and, when `--metrics` is given, a
    /// [`MetricsSink`] deriving event counters — into one shared sink for
    /// [`run_workloads_traced`]. Returns `None` when neither was requested.
    pub fn event_sink(&self) -> Option<SharedSink> {
        let mut fan = Fanout::default();
        if let Some(path) = &self.trace {
            let sink = JsonlTrace::create(path)
                .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
            fan.0.push(Box::new(sink));
        }
        if self.metrics.is_some() {
            fan.0.push(Box::new(MetricsSink::new()));
        }
        if fan.0.is_empty() {
            None
        } else {
            Some(SharedSink::new(fan))
        }
    }

    /// Enables the process-global flight recorder and Chrome span collector
    /// when their output files were requested. Call once before mapping
    /// starts ([`parse_cli`] does this automatically).
    pub fn enable_collectors(&self) {
        if self.flight.is_some() || self.chrome_trace.is_some() {
            rewire_obs::flight().enable(0);
        }
        if self.chrome_trace.is_some() {
            rewire_obs::chrome().enable(0);
        }
    }

    /// Writes every requested observability artifact: the `--metrics`
    /// registry snapshot, the `--chrome-trace` span timeline (with flight
    /// events embedded as instants), and the `--flight` decision log. Call
    /// once, after every run finished. Panics on I/O errors for the same
    /// fail-fast reason as [`trace_sink`].
    ///
    /// [`trace_sink`]: BenchArgs::trace_sink
    pub fn write_metrics(&self) {
        if let Some(path) = &self.metrics {
            let mut json = rewire_obs::metrics().snapshot().to_json();
            json.push('\n');
            std::fs::write(path, json)
                .unwrap_or_else(|e| panic!("cannot write metrics file {path}: {e}"));
            eprintln!("metrics written to {path}");
        }
        if let Some(path) = &self.chrome_trace {
            let flight = rewire_obs::flight().snapshot();
            let mut json = rewire_obs::chrome().export_json(Some(&flight));
            json.push('\n');
            std::fs::write(path, json)
                .unwrap_or_else(|e| panic!("cannot write chrome trace file {path}: {e}"));
            eprintln!("chrome trace written to {path}");
        }
        if let Some(path) = &self.flight {
            let mut json = rewire_obs::flight().snapshot().to_json();
            json.push('\n');
            std::fs::write(path, json)
                .unwrap_or_else(|e| panic!("cannot write flight log file {path}: {e}"));
            eprintln!("flight log written to {path}");
        }
    }

    /// Applies the `--kernels` filter to a workload list: every workload
    /// keeps only the named kernels, and workloads left empty are dropped.
    /// Panics when a requested name matches no kernel anywhere — a typo'd
    /// filter should fail loudly, not silently run nothing.
    pub fn filter_workloads(&self, workloads: Vec<Workload>) -> Vec<Workload> {
        let Some(keep) = &self.kernels else {
            return workloads;
        };
        let mut matched: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let filtered: Vec<Workload> = workloads
            .into_iter()
            .filter_map(|mut w| {
                w.kernels.retain(|dfg| {
                    keep.iter().any(|k| {
                        let hit = k == dfg.name();
                        if hit {
                            matched.insert(dfg.name().to_string());
                        }
                        hit
                    })
                });
                (!w.kernels.is_empty()).then_some(w)
            })
            .collect();
        for k in keep {
            assert!(
                matched.contains(k),
                "--kernels: `{k}` matches no kernel in this experiment"
            );
        }
        filtered
    }
}

/// Parses the common experiment-binary CLI: an optional positional per-II
/// budget in seconds plus optional `--jobs N` (or `--jobs=N`),
/// `--trace FILE` (or `--trace=FILE`), `--metrics FILE` (or
/// `--metrics=FILE`), `--kernels a,b` (or `--kernels=a,b`) and
/// `--router dense|pruned|tree|per-edge` (or `--router=MODE`) flags. The
/// `--router` flag is repeatable: `dense|pruned` picks the DP sweep mode,
/// `tree|per-edge` the fan-out mode, and the two compose.
///
/// Installs the parsed router and fan-out modes as the process defaults,
/// so every mapper thread the experiment spawns inherits them.
pub fn parse_cli(default_secs: f64) -> BenchArgs {
    let parsed = parse_cli_from(std::env::args().skip(1), default_secs);
    rewire_mrrg::set_default_router_mode(parsed.router);
    rewire_mrrg::set_default_fanout_mode(parsed.fanout);
    parsed.enable_collectors();
    parsed
}

fn parse_cli_from(args: impl IntoIterator<Item = String>, default_secs: f64) -> BenchArgs {
    let mut parsed = BenchArgs {
        seconds_per_ii: default_secs,
        jobs: 1,
        trace: None,
        metrics: None,
        kernels: None,
        chrome_trace: None,
        flight: None,
        router: rewire_mrrg::default_router_mode(),
        fanout: rewire_mrrg::default_fanout_mode(),
    };
    fn apply_router(parsed: &mut BenchArgs, v: &str) {
        match v {
            "dense" => parsed.router = rewire_mrrg::RouterMode::Dense,
            "pruned" => parsed.router = rewire_mrrg::RouterMode::Pruned,
            "tree" => parsed.fanout = rewire_mrrg::FanoutMode::Tree,
            "per-edge" => parsed.fanout = rewire_mrrg::FanoutMode::PerEdge,
            other => panic!("--router needs dense|pruned|tree|per-edge, got {other:?}"),
        }
    }
    let parse_kernels = |v: &str| {
        v.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            parsed.jobs = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--jobs needs a positive integer");
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            parsed.jobs = v.parse().expect("--jobs needs a positive integer");
        } else if arg == "--trace" {
            parsed.trace = Some(args.next().expect("--trace needs a file path"));
        } else if let Some(v) = arg.strip_prefix("--trace=") {
            parsed.trace = Some(v.to_string());
        } else if arg == "--metrics" {
            parsed.metrics = Some(args.next().expect("--metrics needs a file path"));
        } else if let Some(v) = arg.strip_prefix("--metrics=") {
            parsed.metrics = Some(v.to_string());
        } else if arg == "--chrome-trace" {
            parsed.chrome_trace = Some(args.next().expect("--chrome-trace needs a file path"));
        } else if let Some(v) = arg.strip_prefix("--chrome-trace=") {
            parsed.chrome_trace = Some(v.to_string());
        } else if arg == "--flight" {
            parsed.flight = Some(args.next().expect("--flight needs a file path"));
        } else if let Some(v) = arg.strip_prefix("--flight=") {
            parsed.flight = Some(v.to_string());
        } else if arg == "--kernels" {
            parsed.kernels = Some(parse_kernels(
                &args.next().expect("--kernels needs a comma-separated list"),
            ));
        } else if let Some(v) = arg.strip_prefix("--kernels=") {
            parsed.kernels = Some(parse_kernels(v));
        } else if arg == "--router" {
            let v = args.next().expect("--router needs a mode");
            apply_router(&mut parsed, &v);
        } else if let Some(v) = arg.strip_prefix("--router=") {
            apply_router(&mut parsed, v);
        } else if let Ok(v) = arg.parse::<f64>() {
            parsed.seconds_per_ii = v;
        } else {
            panic!(
                "unrecognised argument {arg:?} (expected [seconds_per_ii] [--jobs N] [--trace FILE] [--metrics FILE] [--chrome-trace FILE] [--flight FILE] [--kernels a,b] [--router dense|pruned|tree|per-edge])"
            );
        }
    }
    parsed.jobs = parsed.jobs.max(1);
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use rewire_arch::presets;
    use rewire_dfg::kernels;

    #[test]
    fn runner_produces_one_row_per_combination() {
        let w = Workload {
            label: "test",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r4(),
            kernels: vec![kernels::fir(), kernels::atax()],
        };
        let mut seen = 0;
        let rows = run_workloads(&[w], &[MapperKind::PathFinder], 0.3, |_| seen += 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(seen, 2);
        for row in &rows {
            assert_eq!(row.results.len(), 1);
            assert_eq!(row.results[0].mapper, "PF*");
            assert!(row.mii >= 1);
        }
    }

    #[test]
    fn parallel_runner_matches_serial() {
        // Kernels that map at their first feasible II under a budget far
        // larger than they need, so attempt caps bind instead of the
        // wall-clock deadline — the documented precondition (DESIGN.md
        // §6b) for jobs-independent achieved IIs. Deadline-bound kernels
        // (e.g. fir/atax at a tight budget) are NOT stable under 4-way
        // contention on a small machine.
        let mk = || Workload {
            label: "test",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r4(),
            kernels: vec![
                kernels::by_name("bicg").unwrap(),
                kernels::by_name("mvt").unwrap(),
            ],
        };
        let serial = run_workloads(&[mk()], &[MapperKind::PathFinder], 60.0, |_| {});
        let mut seen = 0;
        let parallel =
            run_workloads_jobs(&[mk()], &[MapperKind::PathFinder], 60.0, 4, |_| seen += 1);
        assert_eq!(seen, serial.len());
        assert_eq!(parallel.len(), serial.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.config, p.config);
            assert_eq!(s.kernel, p.kernel, "row order is the serial order");
            assert_eq!(s.mii, p.mii);
            assert_eq!(s.results.len(), p.results.len());
            for (sr, pr) in s.results.iter().zip(&p.results) {
                assert_eq!(sr.mapper, pr.mapper);
                assert_eq!(sr.achieved_ii, pr.achieved_ii);
            }
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..40).collect();
        let doubled = parallel_map(&items, 8, |&x| 2 * x);
        assert_eq!(doubled, (0..40).map(|x| 2 * x).collect::<Vec<_>>());
        let serial = parallel_map(&items, 1, |&x| 2 * x);
        assert_eq!(doubled, serial);
    }

    #[test]
    fn cli_parsing_accepts_secs_jobs_and_trace() {
        let arg = |s: &str| s.to_string();
        let base = parse_cli_from([], 2.0);
        assert_eq!(base.seconds_per_ii, 2.0);
        assert_eq!(base.jobs, 1);
        assert_eq!(base.trace, None);
        assert_eq!(parse_cli_from([arg("0.5")], 2.0).seconds_per_ii, 0.5);
        assert_eq!(parse_cli_from([arg("--jobs"), arg("4")], 2.0).jobs, 4);
        let combined = parse_cli_from([arg("--jobs=8"), arg("1.5")], 2.0);
        assert_eq!(combined.jobs, 8);
        assert_eq!(combined.seconds_per_ii, 1.5);
        assert_eq!(parse_cli_from([arg("--jobs=0")], 2.0).jobs, 1, "clamped");
        assert_eq!(
            parse_cli_from([arg("--trace"), arg("out.jsonl")], 2.0).trace,
            Some("out.jsonl".to_string())
        );
        assert_eq!(
            parse_cli_from([arg("--trace=t.jsonl")], 2.0).trace,
            Some("t.jsonl".to_string())
        );
    }

    #[test]
    #[should_panic(expected = "unrecognised argument")]
    fn cli_parsing_rejects_junk() {
        parse_cli_from(["--frobnicate".to_string()], 2.0);
    }

    #[test]
    fn cli_parsing_accepts_metrics_and_kernels() {
        let arg = |s: &str| s.to_string();
        assert_eq!(parse_cli_from([], 2.0).metrics, None);
        assert_eq!(parse_cli_from([], 2.0).kernels, None);
        assert_eq!(
            parse_cli_from([arg("--metrics"), arg("m.json")], 2.0).metrics,
            Some("m.json".to_string())
        );
        assert_eq!(
            parse_cli_from([arg("--metrics=out/m.json")], 2.0).metrics,
            Some("out/m.json".to_string())
        );
        assert_eq!(
            parse_cli_from([arg("--kernels"), arg("fir,atax")], 2.0).kernels,
            Some(vec!["fir".to_string(), "atax".to_string()])
        );
        assert_eq!(
            parse_cli_from([arg("--kernels=fir, atax,")], 2.0).kernels,
            Some(vec!["fir".to_string(), "atax".to_string()]),
            "whitespace and empty segments are dropped"
        );
    }

    #[test]
    fn cli_parsing_accepts_chrome_trace_and_flight() {
        let arg = |s: &str| s.to_string();
        let base = parse_cli_from([], 2.0);
        assert_eq!(base.chrome_trace, None);
        assert_eq!(base.flight, None);
        assert_eq!(
            parse_cli_from([arg("--chrome-trace"), arg("t.json")], 2.0).chrome_trace,
            Some("t.json".to_string())
        );
        assert_eq!(
            parse_cli_from([arg("--chrome-trace=out/t.json")], 2.0).chrome_trace,
            Some("out/t.json".to_string())
        );
        assert_eq!(
            parse_cli_from([arg("--flight"), arg("f.json")], 2.0).flight,
            Some("f.json".to_string())
        );
        assert_eq!(
            parse_cli_from([arg("--flight=out/f.json")], 2.0).flight,
            Some("out/f.json".to_string())
        );
    }

    #[test]
    fn cli_parsing_accepts_router_mode() {
        use rewire_mrrg::RouterMode;
        let arg = |s: &str| s.to_string();
        assert_eq!(parse_cli_from([], 2.0).router, RouterMode::Pruned);
        assert_eq!(
            parse_cli_from([arg("--router"), arg("dense")], 2.0).router,
            RouterMode::Dense
        );
        assert_eq!(
            parse_cli_from([arg("--router=pruned")], 2.0).router,
            RouterMode::Pruned
        );
    }

    #[test]
    fn cli_parsing_accepts_fanout_mode_and_composes() {
        use rewire_mrrg::{FanoutMode, RouterMode};
        let arg = |s: &str| s.to_string();
        assert_eq!(parse_cli_from([], 2.0).fanout, FanoutMode::Tree);
        assert_eq!(
            parse_cli_from([arg("--router"), arg("per-edge")], 2.0).fanout,
            FanoutMode::PerEdge
        );
        // Repeatable and orthogonal: sweep + fan-out in one invocation.
        let both = parse_cli_from([arg("--router=dense"), arg("--router=per-edge")], 2.0);
        assert_eq!(both.router, RouterMode::Dense);
        assert_eq!(both.fanout, FanoutMode::PerEdge);
        assert_eq!(
            parse_cli_from([arg("--router=tree")], 2.0).fanout,
            FanoutMode::Tree
        );
    }

    #[test]
    #[should_panic(expected = "--router needs")]
    fn cli_parsing_rejects_unknown_router_mode() {
        parse_cli_from(["--router=fast".to_string()], 2.0);
    }

    #[test]
    fn kernel_filter_restricts_workloads() {
        let args = parse_cli_from(["--kernels=fir".to_string()], 2.0);
        let w = Workload {
            label: "test",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r4(),
            kernels: vec![kernels::fir(), kernels::atax()],
        };
        let only_atax = Workload {
            label: "other",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r4(),
            kernels: vec![kernels::atax()],
        };
        let filtered = args.filter_workloads(vec![w, only_atax]);
        assert_eq!(filtered.len(), 1, "emptied workloads are dropped");
        assert_eq!(filtered[0].kernels.len(), 1);
        assert_eq!(filtered[0].kernels[0].name(), "fir");
    }

    #[test]
    #[should_panic(expected = "matches no kernel")]
    fn kernel_filter_rejects_typos() {
        let args = parse_cli_from(["--kernels=not_a_kernel".to_string()], 2.0);
        let w = Workload {
            label: "test",
            budget_scale: 1.0,
            cgra: presets::paper_4x4_r4(),
            kernels: vec![kernels::fir()],
        };
        args.filter_workloads(vec![w]);
    }

    #[test]
    fn event_sink_composes_trace_and_metrics() {
        let base = parse_cli_from([], 2.0);
        assert!(base.event_sink().is_none(), "nothing requested, no sink");
        let metrics_only = BenchArgs {
            metrics: Some("unused.json".to_string()),
            ..base
        };
        // Metrics-only composition must not try to open any file.
        assert!(metrics_only.event_sink().is_some());
    }

    #[test]
    fn mapper_kinds_build_and_label() {
        for kind in [
            MapperKind::Rewire,
            MapperKind::PathFinder,
            MapperKind::PathFinderFullBudget,
            MapperKind::Annealing,
        ] {
            let mapper = kind.build();
            assert!(!mapper.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(MapperKind::PathFinderFullBudget.label(), "PF*");
    }
}
