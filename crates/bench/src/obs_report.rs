//! Aggregation behind the `rewire-report` binary: folds a JSONL
//! [`MapEvent`] trace and any number of metrics snapshots into per-run
//! summaries (attempts, rounds, II achieved) joined with the `mapper/kernel`
//! scoped counters and span timings the instrumented mappers recorded.
//!
//! [`MapEvent`]: rewire_mappers::MapEvent

use rewire_mappers::MapStats;
use rewire_obs::json::{self, Json};
use rewire_obs::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// One run's aggregate, rebuilt from its trace lines.
///
/// The engine ascends from MII, so the first `ii_started` value of a run
/// *is* its MII — the trace needs no separate MII record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Mapper display name.
    pub mapper: String,
    /// Kernel name.
    pub kernel: String,
    /// Base RNG seed.
    pub seed: u64,
    /// MII (the first II the engine attempted); 0 if no II was started.
    pub mii: u32,
    /// Achieved II (`None` = the run gave up).
    pub achieved_ii: Option<u32>,
    /// Why the run gave up (trace label), if it did.
    pub gave_up: Option<String>,
    /// `ii_started` events seen.
    pub iis_started: u32,
    /// `attempt_finished` events seen.
    pub attempts: u32,
    /// `negotiation_round` events seen.
    pub rounds: u64,
    /// Total single-node remapping iterations over all attempts.
    pub iterations: u64,
    /// Total wall-clock of the run in µs (from the terminal event).
    pub elapsed_us: u128,
}

impl RunSummary {
    /// Rebuilds a [`MapStats`] so the report can reuse its `Display`
    /// one-liner — the same formatting path `rewire-map` prints.
    pub fn to_stats(&self) -> MapStats {
        MapStats {
            mapper: self.mapper.clone(),
            kernel: self.kernel.clone(),
            mii: self.mii,
            achieved_ii: self.achieved_ii,
            iis_explored: self.iis_started,
            remap_iterations: self.iterations,
            negotiation_rounds: self.rounds,
            elapsed: Duration::from_micros(self.elapsed_us.min(u64::MAX as u128) as u64),
            verdicts: Vec::new(),
        }
    }

    /// The metric scope this run's counters were recorded under.
    pub fn scope(&self) -> String {
        format!("{}/{}", self.mapper, self.kernel)
    }
}

fn field_str<'a>(obj: &'a Json, name: &str, line: usize) -> Result<&'a str, String> {
    obj.get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line}: missing string field {name:?}"))
}

fn field_u64(obj: &Json, name: &str, line: usize) -> Result<u64, String> {
    obj.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line}: missing numeric field {name:?}"))
}

/// Parses a JSONL trace into per-run summaries, sorted by
/// `(mapper, kernel, seed)`. Blank lines are skipped; any malformed line is
/// an error (a truncated trace should fail the report, not thin it out).
pub fn parse_trace(text: &str) -> Result<Vec<RunSummary>, String> {
    let mut runs: BTreeMap<(String, String, u64), RunSummary> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let obj = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let mapper = field_str(&obj, "mapper", lineno)?.to_string();
        let kernel = field_str(&obj, "kernel", lineno)?.to_string();
        let seed = field_u64(&obj, "seed", lineno)?;
        let kind = field_str(&obj, "type", lineno)?.to_string();
        let run = runs
            .entry((mapper.clone(), kernel.clone(), seed))
            .or_insert_with(|| RunSummary {
                mapper,
                kernel,
                seed,
                ..RunSummary::default()
            });
        match kind.as_str() {
            "ii_started" => {
                let ii = field_u64(&obj, "ii", lineno)? as u32;
                if run.iis_started == 0 {
                    run.mii = ii;
                }
                run.iis_started += 1;
            }
            "negotiation_round" => run.rounds += 1,
            "attempt_finished" => {
                run.attempts += 1;
                run.iterations += field_u64(&obj, "iterations", lineno)?;
            }
            "mapped" => {
                run.achieved_ii = Some(field_u64(&obj, "ii", lineno)? as u32);
                run.elapsed_us = field_u64(&obj, "elapsed_us", lineno)? as u128;
            }
            "gave_up" => {
                run.gave_up = Some(field_str(&obj, "reason", lineno)?.to_string());
                run.elapsed_us = field_u64(&obj, "elapsed_us", lineno)? as u128;
            }
            other => return Err(format!("line {lineno}: unknown event type {other:?}")),
        }
    }
    Ok(runs.into_values().collect())
}

/// Parses and merges metrics snapshot files (the counters are additive, so
/// snapshots from separate processes merge into one view).
pub fn load_snapshots(texts: &[(String, String)]) -> Result<Snapshot, String> {
    let mut merged = Snapshot::default();
    for (name, text) in texts {
        let snap = Snapshot::from_json(text).map_err(|e| format!("{name}: {e}"))?;
        merged.merge(&snap);
    }
    Ok(merged)
}

fn counter(snap: &Snapshot, scope: &str, name: &str) -> u64 {
    snap.scopes
        .get(scope)
        .and_then(|s| s.counters.get(name))
        .copied()
        .unwrap_or(0)
}

/// Renders the per-run table, one `MapStats` line per run, and (when a
/// snapshot is present) the per-scope span time breakdown.
pub fn render_report(runs: &[RunSummary], snap: Option<&Snapshot>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:<14} {:>4} {:>4} {:>5} {:>7} {:>10} {:>10} {:>12} {:>10}",
        "mapper",
        "kernel",
        "II",
        "MII",
        "IIs",
        "rounds",
        "iters",
        "time_ms",
        "expansions",
        "rip_ups"
    );
    for run in runs {
        let ii = run
            .achieved_ii
            .map_or_else(|| "-".to_string(), |ii| ii.to_string());
        let scope = run.scope();
        let (expansions, rip_ups) = snap.map_or((0, 0), |s| {
            (
                counter(s, &scope, "router.expansions"),
                counter(s, &scope, "pf.rip_ups"),
            )
        });
        let _ = writeln!(
            out,
            "{:<8} {:<14} {:>4} {:>4} {:>5} {:>7} {:>10} {:>10.1} {:>12} {:>10}",
            run.mapper,
            run.kernel,
            ii,
            run.mii,
            run.iis_started,
            run.rounds,
            run.iterations,
            run.elapsed_us as f64 / 1000.0,
            expansions,
            rip_ups
        );
    }
    out.push('\n');
    for run in runs {
        let _ = writeln!(out, "{}", run.to_stats());
    }
    if let Some(snap) = snap {
        let scope_names: std::collections::BTreeSet<String> =
            runs.iter().map(RunSummary::scope).collect();
        let present: Vec<&String> = scope_names
            .iter()
            .filter(|name| snap.scopes.contains_key(name.as_str()))
            .collect();
        if !present.is_empty() {
            let _ = writeln!(out, "\ntime breakdown (per scope):");
        }
        for scope_name in present {
            let scope = &snap.scopes[scope_name.as_str()];
            let _ = writeln!(out, "  {scope_name}");
            for (path, span) in &scope.spans {
                let _ = writeln!(
                    out,
                    "    {:<28} {:>6}x {:>10.1} ms",
                    path,
                    span.count,
                    span.total_ms()
                );
            }
            // Gauges carry point-in-time sizes (fabric PEs, distance-table
            // bytes) so memory growth is visible next to the timings.
            for (name, v) in &scope.gauges {
                let _ = writeln!(out, "    {name:<28} {v:>18} (gauge)");
            }
            // Histogram tails, estimated from the log2 buckets: the p99 of
            // e.g. route lengths or attempt times is what regressions show
            // up in long before the mean moves.
            for (name, h) in &scope.histograms {
                let q = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.1}"));
                let _ = writeln!(
                    out,
                    "    {:<28} {:>6}x p50 {:>8} p90 {:>8} p99 {:>8} max {:>8}",
                    name,
                    h.count,
                    q(h.p50()),
                    q(h.p90()),
                    q(h.p99()),
                    h.max.map_or_else(|| "-".to_string(), |m| m.to_string()),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        r#"{"mapper":"PF*","kernel":"fir","seed":7,"type":"ii_started","ii":3}"#,
        "\n",
        r#"{"mapper":"PF*","kernel":"fir","seed":7,"type":"negotiation_round","ii":3,"iteration":10,"ill_nodes":2,"overuse":4}"#,
        "\n",
        r#"{"mapper":"PF*","kernel":"fir","seed":7,"type":"attempt_finished","ii":3,"routed":false,"overuse":4,"iterations":50,"elapsed_us":900}"#,
        "\n",
        r#"{"mapper":"PF*","kernel":"fir","seed":7,"type":"ii_started","ii":4}"#,
        "\n",
        r#"{"mapper":"PF*","kernel":"fir","seed":7,"type":"attempt_finished","ii":4,"routed":true,"overuse":0,"iterations":73,"elapsed_us":800}"#,
        "\n",
        r#"{"mapper":"PF*","kernel":"fir","seed":7,"type":"mapped","ii":4,"iis_explored":2,"elapsed_us":12300}"#,
        "\n",
    );

    #[test]
    fn trace_aggregates_into_one_run() {
        let runs = parse_trace(TRACE).unwrap();
        assert_eq!(runs.len(), 1);
        let r = &runs[0];
        assert_eq!(r.mapper, "PF*");
        assert_eq!(r.kernel, "fir");
        assert_eq!(r.seed, 7);
        assert_eq!(r.mii, 3, "first ii_started is the MII");
        assert_eq!(r.achieved_ii, Some(4));
        assert_eq!(r.iis_started, 2);
        assert_eq!(r.attempts, 2);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.iterations, 123);
        assert_eq!(r.elapsed_us, 12_300);
        assert_eq!(
            r.to_stats().to_string(),
            "PF*/fir: II 4 (MII 3) after 2 IIs, 123 iterations, 1 rounds, 12.3 ms"
        );
    }

    #[test]
    fn malformed_lines_fail_with_position() {
        let bad = format!("{TRACE}this is not json\n");
        let err = parse_trace(&bad).unwrap_err();
        assert!(err.starts_with("line 7:"), "{err}");
        let missing = r#"{"mapper":"PF*","kernel":"fir","type":"ii_started","ii":3}"#;
        let err = parse_trace(missing).unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn gave_up_runs_are_reported_as_failures() {
        let trace = concat!(
            r#"{"mapper":"SA","kernel":"atax","seed":1,"type":"ii_started","ii":3}"#,
            "\n",
            r#"{"mapper":"SA","kernel":"atax","seed":1,"type":"gave_up","reason":"max_ii_reached","iis_explored":18,"elapsed_us":950000}"#,
            "\n",
        );
        let runs = parse_trace(trace).unwrap();
        assert_eq!(runs[0].achieved_ii, None);
        assert_eq!(runs[0].gave_up.as_deref(), Some("max_ii_reached"));
        let line = runs[0].to_stats().to_string();
        assert!(line.contains("failed"), "{line}");
    }

    #[test]
    fn report_joins_metric_scopes() {
        let runs = parse_trace(TRACE).unwrap();
        let snap_json = r#"{"version":1,"scopes":{"PF*/fir":{"counters":{"pf.rip_ups":9,"router.expansions":4321},"gauges":{"engine.fabric_pes":64,"router.distance_table_bytes":16384},"histograms":{},"spans":{"run":{"count":1,"total_ns":12300000}}}}}"#;
        let snap = load_snapshots(&[("m.json".to_string(), snap_json.to_string())]).unwrap();
        let report = render_report(&runs, Some(&snap));
        assert!(report.contains("4321"), "{report}");
        assert!(report.contains("PF*/fir: II 4"), "{report}");
        assert!(report.contains("time breakdown"), "{report}");
        assert!(report.contains("run"), "{report}");
        assert!(report.contains("engine.fabric_pes"), "{report}");
        assert!(
            report.contains("router.distance_table_bytes") && report.contains("16384"),
            "{report}"
        );
    }

    #[test]
    fn report_renders_histogram_quantiles() {
        let runs = parse_trace(TRACE).unwrap();
        // Values {1, 2, 3, 900}: log2 buckets [(1,1),(2,2),(10,1)]. The
        // interpolated quantiles are pinned by the snapshot unit tests:
        // p50 = 2.25, p90 = p99 = 767.5.
        let snap_json = r#"{"version":1,"scopes":{"PF*/fir":{"counters":{},"gauges":{},"histograms":{"pf.route_len":{"count":4,"sum":906,"min":1,"max":900,"buckets":[[1,1],[2,2],[10,1]]}},"spans":{}}}}"#;
        let snap = load_snapshots(&[("m.json".to_string(), snap_json.to_string())]).unwrap();
        let report = render_report(&runs, Some(&snap));
        assert!(report.contains("pf.route_len"), "{report}");
        assert!(report.contains("p50"), "{report}");
        assert!(report.contains("2.2"), "{report}");
        assert!(report.contains("767.5"), "{report}");
        assert!(report.contains("900"), "{report}");
    }

    #[test]
    fn snapshots_merge_across_files() {
        let a = r#"{"version":1,"scopes":{"PF*/fir":{"counters":{"pf.rip_ups":1},"gauges":{},"histograms":{},"spans":{}}}}"#;
        let b = r#"{"version":1,"scopes":{"PF*/fir":{"counters":{"pf.rip_ups":2},"gauges":{},"histograms":{},"spans":{}}}}"#;
        let snap = load_snapshots(&[
            ("a.json".to_string(), a.to_string()),
            ("b.json".to_string(), b.to_string()),
        ])
        .unwrap();
        assert_eq!(counter(&snap, "PF*/fir", "pf.rip_ups"), 3);
        let err = load_snapshots(&[("c.json".to_string(), "{}".to_string())]).unwrap_err();
        assert!(err.starts_with("c.json:"), "{err}");
    }
}
