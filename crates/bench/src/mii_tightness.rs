//! The MII-tightness study: how close is the theoretical MII bound to
//! the *true* minimal II, and how much do the heuristics leave on the
//! table?
//!
//! The exact SAT backend turns this from speculation into measurement:
//! on every kernel × fabric combination it either proves the minimal II
//! (an `Optimal` verdict means every lower II was refuted by UNSAT) or
//! reports exactly where its conflict budget ran out. Heuristic IIs are
//! then gaps against a proven floor, not against a bound of unknown
//! slack.
//!
//! Everything here is deterministic by construction so the study can be
//! pinned as a golden snapshot (`tests/mii_tightness.rs`): the exact
//! backend is bounded by a conflict budget (never the wall clock at the
//! generous deadlines used), and the heuristics run the same capped
//! configurations as the engine-determinism suite — iteration caps bind,
//! seeds are fixed, wall clocks are slack.
//!
//! The 8×8 fig5 fabric is excluded: its 64 PEs exceed the exact
//! backend's instance-size refusal bound, so it has no proven floor to
//! compare against.

use rewire_arch::{presets, Cgra};
use rewire_core::{RewireConfig, RewireMapper};
use rewire_dfg::kernels;
use rewire_mappers::{
    ExactSatMapper, MapLimits, Mapper, PathFinderConfig, PathFinderMapper, SaConfig, SaMapper,
};
use std::fmt::Write as _;
use std::time::Duration;

/// Conflict budget for the exact backend in the study: large enough to
/// resolve most of the suite, small enough that the release run stays
/// in CI scale. Deterministic — the verdict table is identical on every
/// machine.
pub const STUDY_CONFLICTS: u64 = 50_000;

/// IIs above `mii + EXTRA_II` are not searched; a mapper that needs
/// more reports `-`. The study is about tightness near the bound, not
/// about how far a heuristic can crawl.
pub const EXTRA_II: u32 = 2;

/// One kernel × fabric line of the study.
#[derive(Clone, Debug)]
pub struct TightnessRow {
    /// Fabric label (fig5 naming).
    pub fabric: &'static str,
    /// Kernel name.
    pub kernel: String,
    /// Theoretical minimum II (resource/recurrence bound).
    pub mii: u32,
    /// II achieved by the exact backend, if it found a model.
    pub exact_ii: Option<u32>,
    /// Whether every II below `exact_ii` was refuted by UNSAT.
    pub exact_optimal: bool,
    /// IIs the backend proved infeasible.
    pub refuted: Vec<u32>,
    /// `(label, achieved_ii)` per heuristic, in fixed order.
    pub heuristics: Vec<(&'static str, Option<u32>)>,
}

impl TightnessRow {
    /// `exact=` cell: `3*` proven minimal, `4?` mapped without a full
    /// proof (some lower II timed out as Unknown), `-` no model found.
    pub fn exact_cell(&self) -> String {
        match self.exact_ii {
            Some(ii) if self.exact_optimal => format!("{ii}*"),
            Some(ii) => format!("{ii}?"),
            None => "-".into(),
        }
    }
}

/// The fig5 fabrics the exact backend can decide (everything but 8×8).
pub fn study_fabrics() -> Vec<(&'static str, Cgra)> {
    vec![
        ("4x4 4reg", presets::paper_4x4_r4()),
        ("4x4 2reg", presets::paper_4x4_r2()),
        ("4x4 1reg", presets::paper_4x4_r1()),
    ]
}

/// The capped deterministic heuristics of the engine-determinism suite.
fn heuristics() -> Vec<(&'static str, Box<dyn Mapper>)> {
    vec![
        (
            "rewire",
            Box::new(RewireMapper::with_config(RewireConfig {
                max_cluster_attempts: 6,
                max_restarts_per_ii: 1,
                ..Default::default()
            })),
        ),
        (
            "pf",
            Box::new(PathFinderMapper::with_config(PathFinderConfig {
                max_iterations_per_ii: 60,
                max_full_evals: 6,
                ..Default::default()
            })),
        ),
        (
            "sa",
            Box::new(SaMapper::with_config(SaConfig {
                max_iterations_per_ii: 150,
                max_restarts_per_ii: 1,
                ..Default::default()
            })),
        ),
    ]
}

fn study_limits(mii: u32) -> MapLimits {
    // The wall clock must never bind — determinism comes from conflict
    // and iteration caps.
    MapLimits::fast()
        .with_seed(0xFACADE)
        .with_ii_time_budget(Duration::from_secs(600))
        .with_max_ii(mii + EXTRA_II)
}

/// Runs the full study: every kernel of the suite on every decidable
/// fig5 fabric, exact backend plus the three capped heuristics.
/// `progress` fires after each row.
pub fn mii_tightness_rows(mut progress: impl FnMut(&TightnessRow)) -> Vec<TightnessRow> {
    let suite = kernels::all();
    let mut rows = Vec::new();
    for (fabric, cgra) in study_fabrics() {
        for (kernel, dfg) in &suite {
            let Some(mii) = dfg.mii(&cgra) else {
                continue;
            };
            let limits = study_limits(mii);
            let exact = ExactSatMapper::new()
                .with_conflict_budget(STUDY_CONFLICTS)
                .map(dfg, &cgra, &limits);
            if let Some(m) = &exact.mapping {
                assert!(m.is_valid(dfg, &cgra), "{fabric}/{kernel}: exact model");
            }
            let row = TightnessRow {
                fabric,
                kernel: (*kernel).to_string(),
                mii,
                exact_ii: exact.stats.achieved_ii,
                exact_optimal: exact.stats.proven_optimal(),
                refuted: exact.stats.proven_infeasible_iis(),
                heuristics: heuristics()
                    .into_iter()
                    .map(|(label, h)| (label, h.map(dfg, &cgra, &limits).stats.achieved_ii))
                    .collect(),
            };
            progress(&row);
            rows.push(row);
        }
    }
    rows
}

/// Renders the golden-snapshot form: one stable line per row.
pub fn render_snapshot(rows: &[TightnessRow]) -> String {
    let mut out = String::new();
    out.push_str("# MII-tightness study: exact SAT floor vs MII vs capped heuristics.\n");
    out.push_str("# <fabric> <kernel> mii=N exact=II[*|?]|- [refuted=a,b] <h>=II|- ...\n");
    out.push_str("# '*' = proven minimal (every lower II refuted); '?' = model found\n");
    out.push_str("# but some lower II hit the conflict budget; '-' = none within\n");
    out.push_str("# mii+2. Regenerate: REWIRE_BLESS=1 cargo test --release --test mii_tightness\n");
    for r in rows {
        let fabric = r.fabric.replace(' ', "_");
        write!(
            out,
            "{fabric} {} mii={} exact={}",
            r.kernel,
            r.mii,
            r.exact_cell()
        )
        .unwrap();
        if !r.refuted.is_empty() {
            let list: Vec<String> = r.refuted.iter().map(u32::to_string).collect();
            write!(out, " refuted={}", list.join(",")).unwrap();
        }
        for (label, ii) in &r.heuristics {
            match ii {
                Some(ii) => write!(out, " {label}={ii}").unwrap(),
                None => write!(out, " {label}=-").unwrap(),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the EXPERIMENTS.md markdown table, one section per fabric,
/// with the per-fabric tightness tallies the study is after.
pub fn render_markdown(rows: &[TightnessRow]) -> String {
    let mut out = String::new();
    for (fabric, _) in study_fabrics() {
        let section: Vec<&TightnessRow> = rows.iter().filter(|r| r.fabric == fabric).collect();
        if section.is_empty() {
            continue;
        }
        writeln!(out, "### {fabric}\n").unwrap();
        writeln!(out, "| kernel | MII | exact | Rewire | PF\\* | SA |").unwrap();
        writeln!(out, "|---|---|---|---|---|---|").unwrap();
        for r in &section {
            let cells: Vec<String> = r
                .heuristics
                .iter()
                .map(|(_, ii)| ii.map_or("-".into(), |ii| ii.to_string()))
                .collect();
            writeln!(
                out,
                "| {} | {} | {} | {} |",
                r.kernel,
                r.mii,
                r.exact_cell(),
                cells.join(" | ")
            )
            .unwrap();
        }
        let proven = section.iter().filter(|r| r.exact_optimal).count();
        let at_mii = section
            .iter()
            .filter(|r| r.exact_optimal && r.exact_ii == Some(r.mii))
            .count();
        let above = section
            .iter()
            .filter(|r| r.exact_optimal && r.exact_ii > Some(r.mii))
            .count();
        writeln!(
            out,
            "\n{proven}/{} proven minimal; MII tight for {at_mii}, loose for {above}.\n",
            section.len()
        )
        .unwrap();
    }
    out
}
