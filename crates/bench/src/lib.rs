//! Experiment harness for the Rewire reproduction.
//!
//! One module per paper artefact:
//!
//! * [`workloads`] — the 47 benchmark–architecture combinations of Fig 5,
//! * [`runner`] — runs a set of mappers over workloads and collects rows,
//! * [`mii_tightness`] — the exact-SAT MII-tightness study (proven
//!   minimal II vs the MII bound vs capped heuristics),
//! * [`report`] — table/series printers and the summary statistics the
//!   paper quotes (speedups, optimal/near-optimal counts, time reductions),
//! * [`obs_report`] — trace/metrics aggregation behind `rewire-report`,
//! * [`doctor`] — failure forensics behind `rewire-doctor` (flight-log
//!   analysis, congestion heatmaps, Chrome-trace validation).
//!
//! The binaries `fig5`, `fig6`, `table1` and `repro` regenerate each paper
//! artefact (all accept `--trace FILE`, `--metrics FILE`,
//! `--chrome-trace FILE` and `--flight FILE`); see `EXPERIMENTS.md` at the
//! workspace root for recorded outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doctor;
pub mod mii_tightness;
pub mod obs_report;
pub mod report;
pub mod runner;
pub mod workloads;

pub use mii_tightness::{mii_tightness_rows, render_markdown, render_snapshot, TightnessRow};
pub use report::{print_fig5, print_fig6, print_table1, summarize, to_markdown, Summary};
pub use runner::{
    parallel_map, parse_cli, run_workloads, run_workloads_jobs, run_workloads_traced, BenchArgs,
    MapperKind, Row,
};
pub use workloads::{
    fig5_workloads, fig6_workloads, scaling_workloads, table1_workloads, Workload,
};
