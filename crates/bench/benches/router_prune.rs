//! Dense vs pruned router comparison: wall time for representative routes
//! under both [`RouterMode`]s, plus a hard correctness gate on the
//! expansion counters — the pruned sweep must never expand more states
//! than the dense one it replaces. CI runs this bench, so a pruning
//! regression (admissibility bug or frontier leak) fails the build even
//! if no unit test happens to cover the offending shape.

use criterion::{criterion_group, criterion_main, Criterion};
use rewire_arch::{presets, Cgra, Coord};
use rewire_dfg::NodeId;
use rewire_mrrg::{Mrrg, Occupancy, RouteRequest, Router, RouterMode, RouterScratch, UnitCost};
use rewire_obs as obs;

fn corner_route(cgra: &Cgra, slack: u32) -> RouteRequest {
    let src = cgra.pe_at(Coord::new(0, 0)).unwrap().id();
    let dst = cgra.pe_at(Coord::new(7, 7)).unwrap().id();
    RouteRequest {
        signal: NodeId::new(0),
        src_pe: src,
        depart_cycle: 1,
        dst_pe: dst,
        arrive_cycle: 1 + 14 + slack,
    }
}

/// Counts `router.expansions` attributed to `scope` while running `f`.
fn expansions_under(scope: &str, f: impl FnOnce()) -> u64 {
    let before = scoped_expansions(scope);
    {
        let _scope = obs::scope(scope.to_string());
        f();
    }
    scoped_expansions(scope) - before
}

fn scoped_expansions(scope: &str) -> u64 {
    obs::metrics()
        .snapshot()
        .scopes
        .get(scope)
        .and_then(|s| s.counters.get("router.expansions").copied())
        .unwrap_or(0)
}

fn bench_router_prune(c: &mut Criterion) {
    let cgra = presets::paper_8x8_r4();
    let mrrg = Mrrg::new(&cgra, 4);
    let occ = Occupancy::new(&mrrg);

    // Correctness gate first, outside the timed loops: identical routes,
    // pruned expansions <= dense, on the long-haul corner route.
    let dense = Router::with_mode(&cgra, &mrrg, RouterMode::Dense);
    let pruned = Router::with_mode(&cgra, &mrrg, RouterMode::Pruned);
    for slack in [0u32, 2, 6] {
        let req = corner_route(&cgra, slack);
        let mut route_d = None;
        let mut route_p = None;
        let d = expansions_under("bench/router_prune/dense", || {
            route_d = Some(dense.route_with(&occ, &req, &UnitCost, &mut RouterScratch::new()));
        });
        let p = expansions_under("bench/router_prune/pruned", || {
            route_p = Some(pruned.route_with(&occ, &req, &UnitCost, &mut RouterScratch::new()));
        });
        assert_eq!(route_d, route_p, "router modes diverged at slack {slack}");
        assert!(
            p <= d,
            "pruned router expanded more states than dense at slack {slack}: {p} > {d}"
        );
        eprintln!("router_prune gate: slack {slack}: dense {d} -> pruned {p} expansions");
    }

    let mut group = c.benchmark_group("router_prune");
    group.sample_size(50);
    for (mode, label) in [(RouterMode::Dense, "dense"), (RouterMode::Pruned, "pruned")] {
        let router = Router::with_mode(&cgra, &mrrg, mode);
        let req = corner_route(&cgra, 2);
        group.bench_function(format!("corner_slack_2/{label}"), |b| {
            let mut scratch = RouterScratch::new();
            b.iter(|| {
                router
                    .route_with(&occ, &req, &UnitCost, &mut scratch)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_router_prune);
criterion_main!(benches);
