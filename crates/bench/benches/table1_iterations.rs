//! Criterion wrapper for Table I: cost of the baselines' single-node
//! remapping iterations (the counts themselves come from the `table1`
//! binary).

use criterion::{criterion_group, criterion_main, Criterion};
use rewire_arch::presets;
use rewire_dfg::kernels;
use rewire_mappers::{MapLimits, Mapper, PathFinderMapper, SaMapper};
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::atax();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(300));

    let mut group = c.benchmark_group("table1_atax_4x4r4");
    group.sample_size(10);
    group.bench_function("pf_per_attempt", |b| {
        b.iter(|| PathFinderMapper::new().map(&dfg, &cgra, &limits))
    });
    group.bench_function("sa_per_attempt", |b| {
        b.iter(|| SaMapper::new().map(&dfg, &cgra, &limits))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
