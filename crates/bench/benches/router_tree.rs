//! Tree vs per-edge fan-out routing: wall time for a broadcast hub under
//! both strategies, plus hard correctness gates before anything is timed —
//! the shared route tree must never occupy more distinct cells nor expand
//! more DP states than the per-edge arm, must actually reuse trunk cells
//! on the fan-out-8 corner (the `router.tree_reuse` counter), and must
//! decode into a valid [`RouteTree`]. CI runs this bench, so a
//! consolidation regression fails the build even if no unit test covers
//! the offending fan-out shape.

use criterion::{criterion_group, criterion_main, Criterion};
use rewire_arch::{presets, Cgra, Coord};
use rewire_dfg::NodeId;
use rewire_mrrg::{Mrrg, Occupancy, Resource, Route, RouteRequest, RouteTree, Router, UnitCost};
use rewire_obs as obs;
use std::collections::HashSet;

/// A broadcast hub in the corner: one producer at (0,0) fanning out to
/// `n` sinks spread over the far half of the fabric, with per-sink slack
/// so the branches have genuinely different lengths (the shape trunk
/// sharing exists for).
fn fanout_requests(cgra: &Cgra, n: usize) -> Vec<RouteRequest> {
    let src = cgra.pe_at(Coord::new(0, 0)).unwrap().id();
    (0..n)
        .map(|i| {
            let row = 3 + (i as u16) % 5;
            let col = 7 - (i as u16) % 3;
            let dst = cgra.pe_at(Coord::new(row, col)).unwrap().id();
            let dist = (row + col) as u32; // Manhattan distance from (0,0)
            RouteRequest {
                signal: NodeId::new(0),
                src_pe: src,
                depart_cycle: 1,
                dst_pe: dst,
                arrive_cycle: 1 + dist + (i as u32) % 3,
            }
        })
        .collect()
}

/// Routes every request independently (the per-edge arm), claiming each
/// route before the next so later branches see earlier ones, then releases
/// everything. Returns the routes in request order.
fn route_per_edge(router: &Router, occ: &mut Occupancy, reqs: &[RouteRequest]) -> Vec<Route> {
    let routes: Vec<Route> = reqs
        .iter()
        .map(|req| {
            let route = router
                .route(occ, req, &UnitCost)
                .expect("per-edge branch routes on the open fabric");
            occ.claim_route(&route);
            route
        })
        .collect();
    for route in &routes {
        occ.release_route(route);
    }
    routes
}

/// Distinct MRRG cells across all branches of one signal's fan-out.
fn footprint(routes: &[Route]) -> usize {
    routes
        .iter()
        .flat_map(|r| r.resources().iter().copied())
        .collect::<HashSet<Resource>>()
        .len()
}

fn counter_in(scope: &str, name: &str) -> u64 {
    obs::metrics()
        .snapshot()
        .scopes
        .get(scope)
        .and_then(|s| s.counters.get(name).copied())
        .unwrap_or(0)
}

fn bench_router_tree(c: &mut Criterion) {
    let cgra = presets::paper_8x8_r4();
    let mrrg = Mrrg::new(&cgra, 4);
    let router = Router::new(&cgra, &mrrg);

    // Correctness gates first, outside the timed loops.
    for n in [2usize, 4, 8] {
        let reqs = fanout_requests(&cgra, n);
        let mut occ = Occupancy::new(&mrrg);
        let exp_pe_before = counter_in("bench/router_tree/pe", "router.expansions");
        let per_edge = {
            let _scope = obs::scope("bench/router_tree/pe".to_string());
            route_per_edge(&router, &mut occ, &reqs)
        };
        let exp_pe = counter_in("bench/router_tree/pe", "router.expansions") - exp_pe_before;
        let reuse_before = counter_in("bench/router_tree/tree", "router.tree_reuse");
        let exp_tree_before = counter_in("bench/router_tree/tree", "router.expansions");
        let tree = {
            let _scope = obs::scope("bench/router_tree/tree".to_string());
            router
                .route_fanout(&mut occ, &reqs, &UnitCost)
                .expect("tree fan-out routes on the open fabric")
        };
        assert_eq!(occ.used_cells(), 0, "route_fanout must leave occ untouched");
        let reuse = counter_in("bench/router_tree/tree", "router.tree_reuse") - reuse_before;
        let exp_tree = counter_in("bench/router_tree/tree", "router.expansions") - exp_tree_before;

        // The decoded tree certifies acyclicity, the common root, and
        // equal-phase-only sharing; branches must arrive on schedule.
        let decoded = RouteTree::from_branches(tree.clone()).expect("valid route tree");
        assert_eq!(decoded.num_branches(), n);
        for (route, req) in tree.iter().zip(&reqs) {
            assert_eq!(
                route.request(),
                req,
                "branches must come back in request order"
            );
        }

        let fp_pe = footprint(&per_edge);
        let fp_tree = footprint(&tree);
        assert!(
            fp_tree <= fp_pe,
            "tree fan-out occupies more cells than per-edge at n={n}: {fp_tree} > {fp_pe}"
        );
        // TreeCost re-prices cells but never widens the DP sweep, so the
        // tree arm must not expand more states than per-edge (today they
        // are equal; the gate guards the never-more direction).
        assert!(
            exp_tree <= exp_pe,
            "tree fan-out expanded more states than per-edge at n={n}: {exp_tree} > {exp_pe}"
        );
        if n == 8 {
            // The fan-out-8 corner is the shape trunk sharing exists for:
            // the tree arm must demonstrably reuse cells across branches.
            assert!(reuse > 0, "no trunk reuse on the fan-out-8 corner");
        }
        eprintln!(
            "router_tree gate: n={n}: per-edge {fp_pe} -> tree {fp_tree} cells, \
             reuse {reuse}, expansions {exp_pe} -> {exp_tree}"
        );
    }

    let mut group = c.benchmark_group("router_tree");
    group.sample_size(50);
    let reqs = fanout_requests(&cgra, 8);
    group.bench_function("fanout_8/per_edge", |b| {
        let mut occ = Occupancy::new(&mrrg);
        b.iter(|| route_per_edge(&router, &mut occ, &reqs))
    });
    group.bench_function("fanout_8/tree", |b| {
        let mut occ = Occupancy::new(&mrrg);
        b.iter(|| router.route_fanout(&mut occ, &reqs, &UnitCost).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_router_tree);
criterion_main!(benches);
