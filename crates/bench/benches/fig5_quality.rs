//! Criterion wrapper for Fig 5: one representative quality point per
//! mapper (full sweeps live in the `fig5` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use rewire_arch::presets;
use rewire_core::RewireMapper;
use rewire_dfg::kernels;
use rewire_mappers::{MapLimits, Mapper, PathFinderMapper, SaMapper};
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::fir();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(400));

    let mut group = c.benchmark_group("fig5_quality_fir_4x4r4");
    group.sample_size(10);
    group.bench_function("rewire", |b| {
        b.iter(|| RewireMapper::new().map(&dfg, &cgra, &limits))
    });
    group.bench_function("pathfinder", |b| {
        b.iter(|| PathFinderMapper::new().map(&dfg, &cgra, &limits))
    });
    group.bench_function("annealing", |b| {
        b.iter(|| SaMapper::new().map(&dfg, &cgra, &limits))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
