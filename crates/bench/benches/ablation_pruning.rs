//! Ablation (DESIGN.md §7): the execution-cycle constraint pruning of
//! Algorithm 2. With a tiny verification budget the pruned search must
//! still find placements where an unpruned-but-capped search flounders;
//! here we compare full-strength Rewire against a variant with a minimal
//! candidate cap (approximating "no pruning value").

use criterion::{criterion_group, criterion_main, Criterion};
use rewire_arch::presets;
use rewire_core::{RewireConfig, RewireMapper};
use rewire_dfg::kernels;
use rewire_mappers::{MapLimits, Mapper};
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::bicg();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(400));

    let mut group = c.benchmark_group("ablation_pruning_bicg");
    group.sample_size(10);
    group.bench_function("default", |b| {
        b.iter(|| RewireMapper::new().map(&dfg, &cgra, &limits))
    });
    group.bench_function("tiny_verification_budget", |b| {
        let config = RewireConfig {
            max_verifications: 8,
            ..Default::default()
        };
        b.iter(|| RewireMapper::with_config(config.clone()).map(&dfg, &cgra, &limits))
    });
    group.bench_function("unbounded_search_steps", |b| {
        let config = RewireConfig {
            max_search_steps: u64::MAX,
            ..Default::default()
        };
        b.iter(|| RewireMapper::with_config(config.clone()).map(&dfg, &cgra, &limits))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
