//! Dense vs tiered distance-oracle construction cost as the fabric grows.
//!
//! The dense table is one BFS per PE (quadratic in fabric size); the tiered
//! oracle runs two BFS per 8×8 tile, so its build cost grows linearly with
//! the PE count. This bench pins the crossover story on 8×8, 16×16 and
//! 32×32 meshes, plus a correctness gate: on every measured fabric the
//! tiered bound must be admissible (never above the true distance).

use criterion::{criterion_group, criterion_main, Criterion};
use rewire_arch::presets;
use rewire_mrrg::{DistanceTable, TieredDistance};
use std::hint::black_box;

fn bench_distance_oracle(c: &mut Criterion) {
    let fabrics = [
        ("8x8", presets::paper_8x8_r4()),
        ("16x16", presets::mesh16()),
        ("32x32", presets::mesh32()),
    ];

    // Correctness gate outside the timed loops: the tiered bound is an
    // admissible lower bound on every fabric this bench measures.
    for (label, cgra) in &fabrics {
        let dense = DistanceTable::build(cgra);
        let tiered = TieredDistance::build(cgra);
        for dst in cgra.pes() {
            let row = dense.to_pe(dst.id());
            for src in cgra.pes() {
                let exact = row[src.id().index()];
                let lb = tiered.lower_bound(src.id(), dst.id());
                assert!(
                    lb <= exact,
                    "{label}: tiered bound {lb} exceeds true distance {exact}"
                );
            }
        }
    }

    let mut group = c.benchmark_group("distance_oracle_build");
    group.sample_size(10);
    for (label, cgra) in &fabrics {
        group.bench_function(format!("dense/{label}"), |b| {
            b.iter(|| black_box(DistanceTable::build(black_box(cgra))))
        });
        group.bench_function(format!("tiered/{label}"), |b| {
            b.iter(|| black_box(TieredDistance::build(black_box(cgra))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance_oracle);
criterion_main!(benches);
