//! §V-B claim: "the propagation time usually takes less than one second".
//! Measures one full propagation (all waves) on the 8×8 fabric.

use criterion::{criterion_group, criterion_main, Criterion};
use rewire_arch::presets;
use rewire_core::{propagate, Direction, PropagationSeed};
use rewire_dfg::NodeId;
use rewire_mrrg::{Mrrg, Occupancy};

fn bench_propagation(c: &mut Criterion) {
    let cgra = presets::paper_8x8_r4();
    let mrrg = Mrrg::new(&cgra, 4);
    let occ = Occupancy::new(&mrrg);
    // Eight forward and eight backward waves from scattered PEs — the
    // scale of a 15-node cluster's source set.
    let seeds: Vec<PropagationSeed> = (0..16u32)
        .map(|i| PropagationSeed {
            source: NodeId::new(i),
            direction: if i % 2 == 0 {
                Direction::Forward
            } else {
                Direction::Backward
            },
            pe: cgra
                .pes()
                .nth((i as usize * 7) % cgra.num_pes())
                .unwrap()
                .id(),
            cycle: 20 + i,
            wave: 20 + i,
        })
        .collect();

    let mut group = c.benchmark_group("propagation");
    group.sample_size(20);
    group.bench_function("8x8_ii4_16waves_24rounds", |b| {
        b.iter(|| propagate(&cgra, &occ, &seeds, 24))
    });
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
