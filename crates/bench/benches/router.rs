//! Micro-benchmark of the layered exact-arrival router: the inner loop of
//! every mapper in the workspace.

use criterion::{criterion_group, criterion_main, Criterion};
use rewire_arch::{presets, Coord};
use rewire_dfg::NodeId;
use rewire_mrrg::{Mrrg, Occupancy, RouteRequest, Router, UnitCost};

fn bench_router(c: &mut Criterion) {
    let cgra = presets::paper_8x8_r4();
    let mrrg = Mrrg::new(&cgra, 4);
    let occ = Occupancy::new(&mrrg);
    let router = Router::new(&cgra, &mrrg);
    let src = cgra.pe_at(Coord::new(0, 0)).unwrap().id();
    let dst = cgra.pe_at(Coord::new(7, 7)).unwrap().id();

    let mut group = c.benchmark_group("router");
    group.sample_size(50);
    group.bench_function("corner_to_corner_exact_16", |b| {
        let req = RouteRequest {
            signal: NodeId::new(0),
            src_pe: src,
            depart_cycle: 1,
            dst_pe: dst,
            arrive_cycle: 17,
        };
        b.iter(|| router.route(&occ, &req, &UnitCost).unwrap())
    });
    group.bench_function("neighbour_with_slack_6", |b| {
        let dst = cgra.pe_at(Coord::new(0, 1)).unwrap().id();
        let req = RouteRequest {
            signal: NodeId::new(0),
            src_pe: src,
            depart_cycle: 1,
            dst_pe: dst,
            arrive_cycle: 7,
        };
        b.iter(|| router.route(&occ, &req, &UnitCost).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
