//! Ablation (DESIGN.md §7): the cluster size cap α. α = 1 degenerates to
//! single-node amendment (the conventional paradigm); the paper operates
//! at α = 15.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rewire_arch::presets;
use rewire_core::{RewireConfig, RewireMapper};
use rewire_dfg::kernels;
use rewire_mappers::{MapLimits, Mapper};
use std::time::Duration;

fn bench_alpha(c: &mut Criterion) {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::mvt();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(400));

    let mut group = c.benchmark_group("ablation_cluster_alpha_mvt");
    group.sample_size(10);
    for alpha in [1usize, 5, 10, 15, 25] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let config = RewireConfig {
                alpha,
                initial_cluster_size: alpha.min(3),
                ..Default::default()
            };
            b.iter(|| RewireMapper::with_config(config.clone()).map(&dfg, &cgra, &limits))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alpha);
criterion_main!(benches);
