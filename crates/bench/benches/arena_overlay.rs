//! Micro-benchmark of the router's congestion-penalty overlay: the flat
//! arena-indexed `Vec<f64>` that replaced a `HashMap<Resource, f64>`. The
//! overlay is consulted once per relaxation in the router's layered DP, so
//! lookup cost multiplies into everything.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rewire_arch::presets;
use rewire_mrrg::{Mrrg, Resource};
use std::collections::HashMap;

fn bench_overlay(c: &mut Criterion) {
    let cgra = presets::paper_8x8_r4();
    let mrrg = Mrrg::new(&cgra, 4);
    let num_cells = mrrg.num_cells();
    // A realistic overlay: penalties on a scattered ~3% of all cells, the
    // shape the router produces after a few failed attempts.
    let penalised: Vec<usize> = (0..num_cells).step_by(31).collect();
    let probe: Vec<Resource> = (0..num_cells)
        .step_by(7)
        .map(|i| mrrg.resource_of(i))
        .collect();

    let mut flat = vec![0.0f64; num_cells];
    for &i in &penalised {
        flat[i] = 8.0;
    }
    let mut hashed: HashMap<Resource, f64> = HashMap::new();
    for &i in &penalised {
        hashed.insert(mrrg.resource_of(i), 8.0);
    }

    let mut group = c.benchmark_group("overlay");
    group.sample_size(200);
    group.bench_function("flat_vec_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &res in &probe {
                acc += flat[mrrg.index_of(black_box(res))];
            }
            acc
        })
    });
    group.bench_function("hashmap_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &res in &probe {
                acc += hashed.get(&black_box(res)).copied().unwrap_or(0.0);
            }
            acc
        })
    });
    group.bench_function("flat_vec_build_and_clear", |b| {
        let mut overlay = vec![0.0f64; num_cells];
        b.iter(|| {
            for &i in &penalised {
                overlay[i] += 8.0;
            }
            for &i in &penalised {
                overlay[i] = 0.0;
            }
            overlay.len()
        })
    });
    group.bench_function("hashmap_build_and_drop", |b| {
        b.iter(|| {
            let mut overlay: HashMap<Resource, f64> = HashMap::new();
            for &res in &probe[..penalised.len().min(probe.len())] {
                *overlay.entry(res).or_insert(0.0) += 8.0;
            }
            overlay.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overlay);
criterion_main!(benches);
