//! Criterion wrapper for Fig 6: end-to-end compilation time of each mapper
//! on a 4×4/2-reg point (full sweeps live in the `fig6` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use rewire_arch::presets;
use rewire_core::RewireMapper;
use rewire_dfg::kernels;
use rewire_mappers::{MapLimits, Mapper, PathFinderMapper, SaMapper};
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let cgra = presets::paper_4x4_r2();
    let dfg = kernels::atax();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_millis(400));

    let mut group = c.benchmark_group("fig6_time_atax_4x4r2");
    group.sample_size(10);
    group.bench_function("rewire", |b| {
        b.iter(|| RewireMapper::new().map(&dfg, &cgra, &limits))
    });
    group.bench_function("pathfinder", |b| {
        b.iter(|| PathFinderMapper::new().map(&dfg, &cgra, &limits))
    });
    group.bench_function("annealing", |b| {
        b.iter(|| SaMapper::new().map(&dfg, &cgra, &limits))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
