//! Quickstart: map one kernel onto the paper's baseline CGRA with all
//! three mappers and compare the achieved IIs.
//!
//! Run with: `cargo run --release --example quickstart`

use rewire::prelude::*;
use std::time::Duration;

fn main() {
    let cgra = presets::paper_4x4_r4();
    let dfg = kernels::gesummv();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));

    println!("architecture: {cgra}");
    println!("kernel:       {dfg}");
    println!("MII:          {}", dfg.mii(&cgra).expect("mappable"));
    println!();

    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(RewireMapper::new()),
        Box::new(PathFinderMapper::new()),
        Box::new(SaMapper::new()),
    ];
    for mapper in mappers {
        let outcome = mapper.map(&dfg, &cgra, &limits);
        match &outcome.mapping {
            Some(mapping) => {
                assert!(mapping.is_valid(&dfg, &cgra));
                println!(
                    "{:>7}: II {} in {:?} ({} remapping iterations)",
                    mapper.name(),
                    mapping.ii(),
                    outcome.stats.elapsed,
                    outcome.stats.remap_iterations,
                );
            }
            None => println!(
                "{:>7}: failed within budget (explored {} IIs)",
                mapper.name(),
                outcome.stats.iis_explored
            ),
        }
    }
}
