//! Mini architecture design-space exploration: sweep register budgets and
//! interconnect richness on a 4×4 fabric and report achieved II plus fabric
//! utilization per kernel — the downstream flow this library is built for.
//!
//! Run with: `cargo run --release --example design_space`

use rewire::prelude::*;
use rewire::sim::config::Configuration;
use rewire::sim::Utilization;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels_under_test = ["fir", "atax", "gesummv"];
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));

    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "fabric", "fir", "atax", "gesummv"
    );
    for (label, regs, diagonals) in [
        ("4x4 r1", 1u8, false),
        ("4x4 r2", 2, false),
        ("4x4 r4", 4, false),
        ("4x4 r2 + diagonals", 2, true),
        ("4x4 r4 + diagonals", 4, true),
    ] {
        let cgra = CgraBuilder::new(4, 4)
            .regs_per_pe(regs)
            .memory_banks(2)
            .memory_columns([0])
            .diagonals(diagonals)
            .build()?;
        print!("{label:<22}");
        for name in kernels_under_test {
            let dfg = kernels::by_name(name).expect("known kernel");
            let outcome = RewireMapper::new().map(&dfg, &cgra, &limits);
            match &outcome.mapping {
                Some(m) => {
                    let cfg = Configuration::from_mapping(&dfg, m);
                    let util = Utilization::of(&cfg, &cgra);
                    print!(" {:>3}/{:>3.0}%", m.ii(), util.fu * 100.0);
                }
                None => print!(" {:>8}", "-"),
            }
        }
        println!();
    }
    println!("\ncells are II / FU utilization; lower II and higher utilization are better");
    Ok(())
}
