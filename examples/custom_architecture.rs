//! Build a custom CGRA (a 6×3 torus with a single memory column and two
//! registers per PE), a custom kernel via the `KernelBuilder`, and map it
//! with Rewire — the flow a downstream architecture-exploration user runs.
//!
//! Run with: `cargo run --release --example custom_architecture`

use rewire::dfg::kernels::KernelBuilder;
use rewire::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A non-square torus fabric: wrap-around links shorten routes.
    let cgra = CgraBuilder::new(6, 3)
        .regs_per_pe(2)
        .memory_banks(2)
        .memory_columns([0])
        .torus(true)
        .build()?;
    println!("architecture: {cgra}");

    // A small custom kernel: dot product with a scaled store.
    let mut k = KernelBuilder::new("scaled-dot");
    let i = k.induction();
    let a = k.load_at(&[i]);
    let b = k.load_at(&[i]);
    let prod = k.mul(a, b);
    let sum = k.accumulate(prod, 1);
    let scale = k.konst();
    let out = k.mul(sum, scale);
    let _st = k.store_at(&[i], out);
    let _guard = k.loop_guard(i);
    let dfg = k.build();
    println!("kernel:       {dfg}");
    println!("RecMII {}  ResMII {:?}", dfg.rec_mii(), dfg.res_mii(&cgra));

    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));
    let outcome = RewireMapper::new().map(&dfg, &cgra, &limits);
    let mapping = outcome.mapping.ok_or("mapping failed")?;
    println!("mapped at II {}", mapping.ii());

    // Show where every operation landed.
    for node in dfg.nodes() {
        let (pe, t) = mapping.placement(node.id()).expect("complete mapping");
        let coord = cgra.pe(pe).coord();
        println!("  {:>8} -> {} {} @ t={}", node.name(), pe, coord, t);
    }
    Ok(())
}
