//! Sweep the whole kernel suite on one architecture and print a Fig-5-style
//! comparison row per kernel (MII and achieved II per mapper).
//!
//! Run with: `cargo run --release --example compare_mappers [-- <arch>]`
//! where `<arch>` is one of `4x4r4` (default), `4x4r2`, `4x4r1`, `8x8r4`.

use rewire::prelude::*;
use std::time::Duration;

fn main() {
    let arch = std::env::args().nth(1).unwrap_or_else(|| "4x4r4".into());
    let cgra = match arch.as_str() {
        "4x4r4" => presets::paper_4x4_r4(),
        "4x4r2" => presets::paper_4x4_r2(),
        "4x4r1" => presets::paper_4x4_r1(),
        "8x8r4" => presets::paper_8x8_r4(),
        other => {
            eprintln!("unknown architecture `{other}`; use 4x4r4|4x4r2|4x4r1|8x8r4");
            std::process::exit(2);
        }
    };
    println!("architecture: {cgra}");
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));

    println!(
        "{:<12} {:>4} {:>7} {:>5} {:>4}",
        "kernel", "MII", "Rewire", "PF*", "SA"
    );
    let fmt = |o: &MapOutcome| o.stats.achieved_ii.map_or("-".into(), |ii| ii.to_string());
    for (name, dfg) in kernels::all() {
        let Some(mii) = dfg.mii(&cgra) else {
            continue;
        };
        let rewire = RewireMapper::new().map(&dfg, &cgra, &limits);
        let pf = PathFinderMapper::new().map(&dfg, &cgra, &limits);
        let sa = SaMapper::new().map(&dfg, &cgra, &limits);
        println!(
            "{name:<12} {mii:>4} {:>7} {:>5} {:>4}",
            fmt(&rewire),
            fmt(&pf),
            fmt(&sa)
        );
    }
}
