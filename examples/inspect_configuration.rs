//! Map a kernel and dump the cycle-by-cycle CGRA configuration — the
//! "bitstream" a real fabric would load — then double-check the mapping
//! semantically against direct DFG interpretation.
//!
//! Run with: `cargo run --release --example inspect_configuration [kernel]`

use rewire::prelude::*;
use rewire::sim::config::Configuration;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fir".into());
    let dfg = kernels::by_name(&name).ok_or("unknown kernel")?;
    let cgra = presets::paper_4x4_r4();
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(3));

    let outcome = RewireMapper::new().map(&dfg, &cgra, &limits);
    let mapping = outcome.mapping.ok_or("mapping failed")?;
    println!(
        "{dfg} mapped at II {} (MII {})\n",
        mapping.ii(),
        outcome.stats.mii
    );

    let cfg = Configuration::from_mapping(&dfg, &mapping);
    println!("{cfg}\n");
    print!("{}", cfg.render(&dfg, &cgra));

    verify_semantics(&dfg, &cgra, &mapping, &Inputs::new(1), 8)?;
    println!("\nsemantics verified over 8 iterations ✓");
    Ok(())
}
