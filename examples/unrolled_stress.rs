//! Stress the compilers with unroll-by-2 kernels on the 8×8 fabric — the
//! paper's scalability setup ("unrolled versions ... specially on 8×8
//! CGRA").
//!
//! Run with: `cargo run --release --example unrolled_stress`

use rewire::prelude::*;
use std::time::Duration;

fn main() {
    let cgra = presets::paper_8x8_r4();
    println!("architecture: {cgra}");
    // Keep the demo snappy: short budgets and a tight II ceiling (the
    // full-scale sweep lives in `rewire-bench --bin fig5`).
    let limits = MapLimits::fast().with_ii_time_budget(Duration::from_secs(2));

    let names = ["fir", "atax", "mvt"];
    println!(
        "{:<12} {:>5} {:>4} {:>7} {:>9}",
        "kernel", "nodes", "MII", "Rewire", "elapsed"
    );
    for base in names {
        let dfg = kernels::by_name(base).expect("kernel exists").unroll(2);
        let Some(mii) = dfg.mii(&cgra) else { continue };
        let limits = limits.with_max_ii(mii + 6);
        let outcome = RewireMapper::new().map(&dfg, &cgra, &limits);
        println!(
            "{:<12} {:>5} {:>4} {:>7} {:>8.1?}",
            dfg.name(),
            dfg.num_nodes(),
            mii,
            outcome
                .stats
                .achieved_ii
                .map_or("-".into(), |ii| ii.to_string()),
            outcome.stats.elapsed,
        );
        if let Some(m) = &outcome.mapping {
            assert!(m.is_valid(&dfg, &cgra), "{}", dfg.name());
        }
    }
}
